// Sharded parallel engine + query service (src/fastppr/engine/):
//  * determinism contract — a 1-shard engine is bit-identical to the flat
//    engine on a mixed insert/delete stream, and a fixed shard count is
//    invariant across worker thread counts;
//  * partition invariants — every source node is owned by exactly one
//    shard's walk store;
//  * shared-graph invariants — all shards read one epoch-versioned
//    Social Store, and the epoch only moves in ingest phases;
//  * the seqlock snapshot buffers stay coherent under concurrent
//    reader/writer load;
//  * personalized queries through the frozen snapshot views match the
//    flat walker bit for bit at every frozen epoch, and run concurrently
//    with live ingestion (the PR 4 segment-snapshot serving path; this
//    file is the TSan CI job's target, so those stress tests run under
//    ThreadSanitizer on every push);
//  * the pipelined execution model (PR 9) is bit-identical to the
//    --lockstep escape hatch at EVERY published epoch (SerializeState
//    differential at S in {1, 4}), and the three overlapped stages
//    survive a TSan stress run against PersonalizedTopK readers with a
//    mid-pipeline durability quiesce + bit-identical Recover (the
//    `*Pipelined*` filter the CI TSan job runs at FASTPPR_STRESS_THREADS).

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fastppr/core/incremental_pagerank.h"
#include "fastppr/core/incremental_salsa.h"
#include "fastppr/core/ppr_walker.h"
#include "fastppr/core/salsa_walker.h"
#include "fastppr/engine/query_service.h"
#include "fastppr/engine/sharded_engine.h"
#include "fastppr/engine/thread_pool.h"
#include "fastppr/graph/generators.h"
#include "fastppr/util/shard.h"

namespace fastppr {
namespace {

MonteCarloOptions Opts(std::size_t R, double eps, uint64_t seed) {
  MonteCarloOptions o;
  o.walks_per_node = R;
  o.epsilon = eps;
  o.seed = seed;
  return o;
}

/// A reproducible mixed stream: inserts from a shuffled power-law edge
/// list, interleaved with deletions of already-inserted edges (same
/// recipe as batched_update_test).
std::vector<EdgeEvent> MixedStream(std::size_t n, uint64_t seed,
                                   double p_delete) {
  Rng rng(seed);
  PreferentialAttachmentOptions gen;
  gen.num_nodes = n;
  gen.out_per_node = 4;
  auto edges = PreferentialAttachment(gen, &rng);
  rng.Shuffle(&edges);

  std::vector<EdgeEvent> events;
  std::vector<Edge> live;
  for (const Edge& e : edges) {
    events.push_back(EdgeEvent{EdgeEvent::Kind::kInsert, e});
    live.push_back(e);
    if (live.size() > 10 && rng.Bernoulli(p_delete)) {
      const std::size_t at = rng.UniformIndex(live.size());
      events.push_back(EdgeEvent{EdgeEvent::Kind::kDelete, live[at]});
      live[at] = live.back();
      live.pop_back();
    }
  }
  return events;
}

/// Streams `events` through `apply` in windows of growing size (1, 3, 7,
/// 15, ... — mixed-kind windows included).
template <typename ApplyFn>
void StreamWindows(const std::vector<EdgeEvent>& events,
                   const ApplyFn& apply) {
  std::size_t i = 0;
  std::size_t window = 1;
  while (i < events.size()) {
    const std::size_t hi = std::min(events.size(), i + window);
    apply(std::span<const EdgeEvent>(events.data() + i, hi - i));
    i = hi;
    window = window * 2 + 1;
  }
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), std::max<std::size_t>(threads, 1));
    for (int round = 0; round < 3; ++round) {
      std::vector<std::atomic<int>> hits(101);
      pool.ParallelFor(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (const auto& h : hits) {
        EXPECT_EQ(h.load(std::memory_order_relaxed), 1);
      }
    }
    pool.ParallelFor(0, [](std::size_t) { FAIL(); });
  }
}

TEST(ShardPartitionTest, EverySourceOwnedByExactlyOneShard) {
  const std::size_t n = 197;
  const std::size_t S = 4;
  ShardedEngine<IncrementalPageRank> engine(n, Opts(2, 0.2, 5),
                                            ShardedOptions{S, 2});
  std::size_t owned_total = 0;
  for (std::size_t s = 0; s < S; ++s) {
    const WalkStore& store = engine.shard(s).walk_store();
    owned_total += store.owned_sources();
    for (NodeId u = 0; u < n; ++u) {
      const bool owns = ShardOfNode(u, S) == s;
      EXPECT_EQ(store.OwnsSource(u), owns);
      EXPECT_EQ(store.GetSegment(u, 0).empty(), !owns);
    }
  }
  EXPECT_EQ(owned_total, n);
  engine.CheckConsistency();
}

TEST(ShardedEngineTest, OneShardMatchesFlatPageRankBitForBit) {
  const std::size_t n = 200;
  const auto events = MixedStream(n, 7, 0.15);
  const MonteCarloOptions mc = Opts(3, 0.2, 99);

  IncrementalPageRank flat(n, mc);
  ShardedEngine<IncrementalPageRank> sharded(n, mc, ShardedOptions{1, 2});

  StreamWindows(events, [&](std::span<const EdgeEvent> w) {
    ASSERT_TRUE(flat.ApplyEvents(w).ok());
    ASSERT_TRUE(sharded.ApplyEvents(w).ok());
  });
  flat.CheckConsistency();
  sharded.CheckConsistency();

  const std::vector<int64_t> merged = sharded.MergedRankingCounts();
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(merged[v], flat.walk_store().VisitCount(v));
  }
  EXPECT_EQ(sharded.MergedRankingTotal(), flat.walk_store().TotalVisits());
  EXPECT_EQ(sharded.lifetime_stats().walk_steps,
            flat.lifetime_stats().walk_steps);
  EXPECT_EQ(sharded.TopK(10), flat.TopK(10));
  EXPECT_EQ(sharded.arrivals(), flat.arrivals());
  EXPECT_EQ(sharded.removals(), flat.removals());
}

TEST(ShardedEngineTest, OneShardMatchesFlatSalsaBitForBit) {
  const std::size_t n = 150;
  const auto events = MixedStream(n, 11, 0.1);
  const MonteCarloOptions mc = Opts(2, 0.25, 17);

  IncrementalSalsa flat(n, mc);
  ShardedEngine<IncrementalSalsa> sharded(n, mc, ShardedOptions{1, 2});

  StreamWindows(events, [&](std::span<const EdgeEvent> w) {
    ASSERT_TRUE(flat.ApplyEvents(w).ok());
    ASSERT_TRUE(sharded.ApplyEvents(w).ok());
  });
  flat.CheckConsistency();
  sharded.CheckConsistency();

  const std::vector<int64_t> merged = sharded.MergedRankingCounts();
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(merged[v], flat.walk_store().AuthorityVisits(v));
  }
  EXPECT_EQ(sharded.lifetime_stats().walk_steps,
            flat.lifetime_stats().walk_steps);
  EXPECT_EQ(sharded.TopK(10), flat.TopKAuthorities(10));
}

TEST(ShardedEngineTest, FourShardsInvariantAcrossThreadCounts) {
  const std::size_t n = 160;
  const auto events = MixedStream(n, 23, 0.2);
  const MonteCarloOptions mc = Opts(3, 0.2, 41);

  std::vector<std::vector<int64_t>> counts;
  std::vector<uint64_t> steps;
  for (std::size_t threads : {1u, 2u, 4u}) {
    ShardedEngine<IncrementalPageRank> engine(n, mc,
                                              ShardedOptions{4, threads});
    StreamWindows(events, [&](std::span<const EdgeEvent> w) {
      ASSERT_TRUE(engine.ApplyEvents(w).ok());
    });
    engine.CheckConsistency();
    counts.push_back(engine.MergedRankingCounts());
    steps.push_back(engine.lifetime_stats().walk_steps);
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);
  EXPECT_EQ(steps[0], steps[1]);
  EXPECT_EQ(steps[0], steps[2]);
}

TEST(ShardedEngineTest, ShardsShareOneSocialStore) {
  // PR 3: the per-shard graph replicas are gone — all S shards read ONE
  // epoch-versioned Social Store, so repair-side graph memory is paid
  // once. In the default pipelined mode that shared store is the repair
  // replica (distinct from the caller-owned primary); in lockstep mode
  // it is the primary itself.
  const std::size_t n = 120;
  const std::size_t S = 4;
  ShardedEngine<IncrementalPageRank> engine(n, Opts(2, 0.2, 3),
                                            ShardedOptions{S, 2});
  ASSERT_FALSE(engine.lockstep());
  for (std::size_t s = 0; s < S; ++s) {
    EXPECT_EQ(&engine.shard(s).social_store(),
              &engine.shard(0).social_store());
    EXPECT_EQ(&engine.shard(s).graph(), &engine.shard(0).graph());
  }
  EXPECT_NE(&engine.shard(0).social_store(), &engine.social_store());

  ShardedOptions lopts{S, 2};
  lopts.lockstep = true;
  ShardedEngine<IncrementalPageRank> lockstep(n, Opts(2, 0.2, 3), lopts);
  ASSERT_TRUE(lockstep.lockstep());
  for (std::size_t s = 0; s < S; ++s) {
    EXPECT_EQ(&lockstep.shard(s).social_store(),
              &lockstep.social_store());
    EXPECT_EQ(&lockstep.shard(s).graph(), &lockstep.graph());
  }
  EXPECT_GT(engine.GraphMemoryBytes(), 0u);

  const auto events = MixedStream(n, 77, 0.2);
  const uint64_t epoch_before = engine.social_store().epoch();
  StreamWindows(events, [&](std::span<const EdgeEvent> w) {
    ASSERT_TRUE(engine.ApplyEvents(w).ok());
  });
  // Every successful mutation bumped the primary's epoch exactly once —
  // the single-writer contract's freeze token moved only in ingest
  // phases (a mutation during parallel repair would have aborted).
  EXPECT_EQ(engine.social_store().epoch(), epoch_before + events.size());
  EXPECT_EQ(engine.social_store().writes(), events.size());
  // CheckConsistency drains the pipeline and proves the repair replica
  // converged to the primary's exact edge set and epoch.
  engine.CheckConsistency();
}

TEST(ShardedEngineTest, PipelinedMatchesLockstepBitForBitPerEpoch) {
  // The tentpole oracle: the pipelined engine (ingest k+1 overlapping
  // repair k overlapping publish k-1) is bit-identical to the
  // --lockstep escape hatch at EVERY published epoch — same serialized
  // graph slabs, walk slabs, RNG streams, counters and ledgers — for
  // S in {1, 4} and differing worker thread counts.
  const std::size_t n = 150;
  const auto events = MixedStream(n, 131, 0.2);
  const MonteCarloOptions mc = Opts(3, 0.2, 71);
  for (std::size_t S : {1ul, 4ul}) {
    ShardedOptions popts{S, 4};
    ShardedOptions lopts{S, 2};
    lopts.lockstep = true;
    ShardedEngine<IncrementalPageRank> pipelined(n, mc, popts);
    ShardedEngine<IncrementalPageRank> lockstep(n, mc, lopts);
    ASSERT_FALSE(pipelined.lockstep());
    ASSERT_TRUE(lockstep.lockstep());

    uint64_t epoch = 0;
    StreamWindows(events, [&](std::span<const EdgeEvent> w) {
      ASSERT_TRUE(pipelined.ApplyEvents(w).ok());
      ASSERT_TRUE(lockstep.ApplyEvents(w).ok());
      ++epoch;
      // SerializeState drains the pipeline: the comparison is defined
      // at the window boundary the lockstep engine is already at.
      ASSERT_EQ(pipelined.SerializeState(), lockstep.SerializeState())
          << "S=" << S << " epoch=" << epoch;
      ASSERT_EQ(pipelined.windows_applied(), epoch);
    });
    pipelined.CheckConsistency();
    lockstep.CheckConsistency();
    EXPECT_EQ(pipelined.TopK(10), lockstep.TopK(10));
  }
}

TEST(ShardedEngineTest, SharedGraphEquivalenceOnMixedStream) {
  // The shared-graph acceptance fixture: S in {1, 4} over a mixed
  // insert/delete stream; any thread count must produce bit-identical
  // rankings, and S=1 must match the flat engine bit for bit.
  const std::size_t n = 180;
  const auto events = MixedStream(n, 101, 0.25);
  const MonteCarloOptions mc = Opts(3, 0.2, 55);

  IncrementalPageRank flat(n, mc);
  StreamWindows(events, [&](std::span<const EdgeEvent> w) {
    ASSERT_TRUE(flat.ApplyEvents(w).ok());
  });

  for (std::size_t S : {1ul, 4ul}) {
    std::vector<std::vector<int64_t>> counts;
    std::vector<std::vector<NodeId>> rankings;
    for (std::size_t threads : {1u, 2u, 4u}) {
      ShardedEngine<IncrementalPageRank> engine(
          n, mc, ShardedOptions{S, threads});
      StreamWindows(events, [&](std::span<const EdgeEvent> w) {
        ASSERT_TRUE(engine.ApplyEvents(w).ok());
      });
      engine.CheckConsistency();
      counts.push_back(engine.MergedRankingCounts());
      rankings.push_back(engine.TopK(15));
    }
    EXPECT_EQ(counts[0], counts[1]) << "S=" << S;
    EXPECT_EQ(counts[0], counts[2]) << "S=" << S;
    EXPECT_EQ(rankings[0], rankings[1]) << "S=" << S;
    EXPECT_EQ(rankings[0], rankings[2]) << "S=" << S;
    if (S == 1) {
      for (NodeId v = 0; v < n; ++v) {
        ASSERT_EQ(counts[0][v], flat.walk_store().VisitCount(v));
      }
      EXPECT_EQ(rankings[0], flat.TopK(15));
    }
  }
}

TEST(ShardedEngineTest, FailedEventFailsIdenticallyInEveryShard) {
  const std::size_t n = 50;
  ShardedEngine<IncrementalPageRank> engine(n, Opts(3, 0.2, 8),
                                            ShardedOptions{3, 2});
  const std::vector<EdgeEvent> events{
      EdgeEvent{EdgeEvent::Kind::kInsert, Edge{1, 2}},
      EdgeEvent{EdgeEvent::Kind::kInsert,
                Edge{static_cast<NodeId>(n + 5), 3}},
      EdgeEvent{EdgeEvent::Kind::kInsert, Edge{2, 3}},
  };
  EXPECT_FALSE(engine.ApplyEvents(events).ok());
  engine.CheckConsistency();
  // The shared graph holds (and every shard repaired) the same
  // one-event prefix.
  for (std::size_t s = 0; s < engine.num_shards(); ++s) {
    EXPECT_EQ(engine.shard(s).num_edges(), 1u);
    EXPECT_TRUE(engine.shard(s).graph().HasEdge(1, 2));
  }
}

TEST(QueryServiceTest, SnapshotsMatchEngineAfterIngest) {
  const std::size_t n = 150;
  const auto events = MixedStream(n, 31, 0.15);
  ShardedEngine<IncrementalPageRank> engine(n, Opts(3, 0.2, 12),
                                            ShardedOptions{3, 2});
  QueryService<IncrementalPageRank> service(&engine);

  EXPECT_EQ(service.published_epoch(), 0u);
  StreamWindows(events, [&](std::span<const EdgeEvent> w) {
    ASSERT_TRUE(service.Ingest(w).ok());
  });
  EXPECT_EQ(service.published_epoch(), engine.windows_applied());

  int64_t total = 0;
  SnapshotInfo info;
  const std::vector<int64_t> snap = service.SnapshotCounts(&total, &info);
  EXPECT_EQ(snap, engine.MergedRankingCounts());
  EXPECT_EQ(total, engine.MergedRankingTotal());
  EXPECT_EQ(info.min_epoch, info.max_epoch);
  EXPECT_EQ(service.TopK(10), engine.TopK(10));
  for (NodeId v : {NodeId{0}, NodeId{17}, NodeId{149}}) {
    const double expect =
        total == 0 ? 0.0
                   : static_cast<double>(snap[v]) /
                         static_cast<double>(total);
    EXPECT_DOUBLE_EQ(service.Score(v), expect);
  }
}

TEST(QueryServiceTest, ConcurrentReadersSeeCoherentSnapshots) {
  const std::size_t n = 120;
  const auto events = MixedStream(n, 43, 0.2);
  ShardedEngine<IncrementalPageRank> engine(n, Opts(2, 0.25, 77),
                                            ShardedOptions{3, 2});
  QueryService<IncrementalPageRank> service(&engine);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  auto reader = [&] {
    while (!done.load(std::memory_order_acquire)) {
      int64_t total = 0;
      SnapshotInfo info;
      const std::vector<int64_t> snap =
          service.SnapshotCounts(&total, &info);
      // Each shard's (counts, total) pair comes from one coherent
      // buffer, so the merged sum must always balance — even while the
      // writer publishes between the per-shard reads.
      int64_t sum = 0;
      for (int64_t c : snap) sum += c;
      ASSERT_EQ(sum, total);
      ASSERT_LE(info.min_epoch, info.max_epoch);
      const double score = service.Score(static_cast<NodeId>(
          reads.load(std::memory_order_relaxed) % n));
      ASSERT_GE(score, 0.0);
      ASSERT_LE(score, 1.0);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread r1(reader);
  std::thread r2(reader);

  // Writer: ingest the stream in small windows (every window publishes).
  std::size_t i = 0;
  while (i < events.size()) {
    const std::size_t hi = std::min(events.size(), i + 16);
    ASSERT_TRUE(service
                    .Ingest(std::span<const EdgeEvent>(events.data() + i,
                                                       hi - i))
                    .ok());
    i = hi;
  }
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_GT(reads.load(), 0u);
  engine.CheckConsistency();

  // Quiescent state: snapshots equal the engine.
  EXPECT_EQ(service.SnapshotCounts(), engine.MergedRankingCounts());
}

TEST(QueryServiceTest, PersonalizedTopKMatchesFlatWalkerAtOneShard) {
  const std::size_t n = 120;
  Rng rng(3);
  auto edges = ErdosRenyi(n, 900, &rng);
  const MonteCarloOptions mc = Opts(4, 0.2, 19);

  IncrementalPageRank flat(n, mc);
  ShardedEngine<IncrementalPageRank> sharded(n, mc, ShardedOptions{1, 2});
  QueryService<IncrementalPageRank> service(&sharded);
  std::vector<EdgeEvent> events;
  for (const Edge& e : edges) {
    events.push_back(EdgeEvent{EdgeEvent::Kind::kInsert, e});
  }
  ASSERT_TRUE(flat.ApplyEvents(events).ok());
  ASSERT_TRUE(service.Ingest(events).ok());
  service.Quiesce();  // pipelined publishes are async; wait for the flip

  PersonalizedPageRankWalker walker(&flat.walk_store(),
                                    &flat.social_store());
  std::vector<ScoredNode> flat_ranked;
  PersonalizedWalkResult flat_walk;
  ASSERT_TRUE(walker
                  .TopK(5, 8, 4000, /*exclude_friends=*/true,
                        /*rng_seed=*/123, &flat_ranked, &flat_walk)
                  .ok());

  std::vector<ScoredNode> sharded_ranked;
  PersonalizedWalkResult sharded_walk;
  ASSERT_TRUE(service
                  .PersonalizedTopK(5, 8, 4000, /*exclude_friends=*/true,
                                    /*rng_seed=*/123, &sharded_ranked,
                                    &sharded_walk)
                  .ok());

  ASSERT_EQ(sharded_ranked.size(), flat_ranked.size());
  for (std::size_t i = 0; i < flat_ranked.size(); ++i) {
    EXPECT_EQ(sharded_ranked[i].node, flat_ranked[i].node);
    EXPECT_EQ(sharded_ranked[i].visits, flat_ranked[i].visits);
  }
  EXPECT_EQ(sharded_walk.length, flat_walk.length);
  EXPECT_EQ(sharded_walk.segments_used, flat_walk.segments_used);
}

TEST(QueryServiceTest, ScratchReadsMatchAllocatingReads) {
  const std::size_t n = 130;
  const auto events = MixedStream(n, 19, 0.15);
  ShardedEngine<IncrementalPageRank> engine(n, Opts(2, 0.2, 21),
                                            ShardedOptions{3, 2});
  QueryService<IncrementalPageRank> service(&engine);
  ASSERT_TRUE(service.Ingest(events).ok());

  ReadScratch scratch;
  int64_t total_into = 0;
  int64_t total_alloc = 0;
  EXPECT_EQ(service.SnapshotCountsInto(&scratch, &total_into),
            service.SnapshotCounts(&total_alloc));
  EXPECT_EQ(total_into, total_alloc);
  EXPECT_EQ(service.TopKInto(10, &scratch), service.TopK(10));

  // Steady state: a warm scratch is never reallocated (the
  // allocation-free read-path contract).
  const int64_t* counts_data = scratch.counts.data();
  const NodeId* ranked_data = scratch.ranked.data();
  for (int round = 0; round < 3; ++round) {
    service.TopKInto(10, &scratch);
    EXPECT_EQ(scratch.counts.data(), counts_data);
    EXPECT_EQ(scratch.ranked.data(), ranked_data);
  }
}

TEST(QueryServiceTest, PersonalizedReadAtFrozenEpochMatchesFlatEngine) {
  // The determinism contract of the frozen views: at every window
  // boundary, a personalized read served from the snapshots must be
  // bit-identical to the flat engine's walker at the same epoch — same
  // ranking, same visit counts, same walk telemetry.
  const std::size_t n = 140;
  const auto events = MixedStream(n, 61, 0.2);
  const MonteCarloOptions mc = Opts(3, 0.2, 33);

  IncrementalPageRank flat(n, mc);
  ShardedEngine<IncrementalPageRank> sharded(n, mc, ShardedOptions{1, 2});
  QueryService<IncrementalPageRank> service(&sharded);

  std::size_t i = 0;
  std::size_t window = 1;
  uint64_t epoch = 0;
  while (i < events.size()) {
    const std::size_t hi = std::min(events.size(), i + window);
    const std::span<const EdgeEvent> w(events.data() + i, hi - i);
    ASSERT_TRUE(flat.ApplyEvents(w).ok());
    ASSERT_TRUE(service.Ingest(w).ok());
    service.Quiesce();
    ++epoch;

    const NodeId seed = static_cast<NodeId>((epoch * 37) % n);
    PersonalizedPageRankWalker walker(&flat.walk_store(),
                                      &flat.social_store());
    std::vector<ScoredNode> flat_ranked;
    PersonalizedWalkResult flat_walk;
    ASSERT_TRUE(walker
                    .TopK(seed, 8, 3000, /*exclude_friends=*/true,
                          /*rng_seed=*/epoch, &flat_ranked, &flat_walk)
                    .ok());

    std::vector<ScoredNode> svc_ranked;
    PersonalizedWalkResult svc_walk;
    SnapshotInfo info;
    ASSERT_TRUE(service
                    .PersonalizedTopK(seed, 8, 3000,
                                      /*exclude_friends=*/true,
                                      /*rng_seed=*/epoch, &svc_ranked,
                                      &svc_walk, &info)
                    .ok());

    EXPECT_EQ(info.min_epoch, info.max_epoch);
    EXPECT_EQ(info.max_epoch, service.published_epoch());
    EXPECT_EQ(info.max_epoch, epoch);
    ASSERT_EQ(svc_ranked.size(), flat_ranked.size());
    for (std::size_t r = 0; r < flat_ranked.size(); ++r) {
      EXPECT_EQ(svc_ranked[r].node, flat_ranked[r].node);
      EXPECT_EQ(svc_ranked[r].visits, flat_ranked[r].visits);
    }
    EXPECT_EQ(svc_walk.length, flat_walk.length);
    EXPECT_EQ(svc_walk.segments_used, flat_walk.segments_used);
    EXPECT_EQ(svc_walk.manual_steps, flat_walk.manual_steps);
    EXPECT_EQ(svc_walk.resets, flat_walk.resets);
    EXPECT_EQ(svc_walk.fetches, flat_walk.fetches);

    i = hi;
    window = window * 2 + 1;
  }
}

/// Test-only live StoreView: routes (u, k) to the owning shard's live
/// walk store — the addressing the dense frozen tables must reproduce
/// bit for bit.
class LiveShardedView {
 public:
  explicit LiveShardedView(const ShardedEngine<IncrementalPageRank>* e)
      : engine_(e) {}
  std::size_t walks_per_node() const {
    return engine_->shard(0).walk_store().walks_per_node();
  }
  double epsilon() const {
    return engine_->shard(0).walk_store().epsilon();
  }
  WalkStore::SegmentView GetSegment(NodeId u, std::size_t k) const {
    return engine_->shard(engine_->shard_of(u))
        .walk_store()
        .GetSegment(u, k);
  }

 private:
  const ShardedEngine<IncrementalPageRank>* engine_;
};

TEST(QueryServiceTest, DenseFrozenReadsMatchLiveShardedWalkerAtSOneAndFour) {
  // The dense owned-row addressing (PR 5): a personalized read served
  // from the frozen per-shard tables through the SegmentOwnership
  // global->local map must be bit-identical to a walker over the LIVE
  // sharded stores at the same epoch — for S = 1 (where both also
  // equal the flat engine, covered elsewhere) and S = 4 (where rows
  // are genuinely scattered across four dense tables).
  const std::size_t n = 160;
  const auto events = MixedStream(n, 67, 0.2);
  const MonteCarloOptions mc = Opts(3, 0.2, 47);

  for (std::size_t S : {1ul, 4ul}) {
    ShardedEngine<IncrementalPageRank> engine(n, mc, ShardedOptions{S, 2});
    QueryService<IncrementalPageRank> service(&engine);

    std::size_t i = 0;
    std::size_t window = 1;
    uint64_t epoch = 0;
    while (i < events.size()) {
      const std::size_t hi = std::min(events.size(), i + window);
      ASSERT_TRUE(
          service
              .Ingest(std::span<const EdgeEvent>(events.data() + i,
                                                 hi - i))
              .ok());
      service.Quiesce();
      ++epoch;

      const NodeId seed = static_cast<NodeId>((epoch * 31 + S) % n);
      LiveShardedView live_view(&engine);
      BasicPersonalizedPageRankWalker<LiveShardedView, DiGraph> live_walker(
          &live_view, &engine.graph());
      std::vector<ScoredNode> live_ranked;
      PersonalizedWalkResult live_walk;
      ASSERT_TRUE(live_walker
                      .TopK(seed, 8, 2500, /*exclude_friends=*/true,
                            /*rng_seed=*/epoch * 7 + S, &live_ranked,
                            &live_walk)
                      .ok());

      std::vector<ScoredNode> svc_ranked;
      PersonalizedWalkResult svc_walk;
      SnapshotInfo info;
      ASSERT_TRUE(service
                      .PersonalizedTopK(seed, 8, 2500,
                                        /*exclude_friends=*/true,
                                        /*rng_seed=*/epoch * 7 + S,
                                        &svc_ranked, &svc_walk, &info)
                      .ok());

      ASSERT_EQ(info.min_epoch, info.max_epoch) << "S=" << S;
      ASSERT_EQ(info.max_epoch, epoch) << "S=" << S;
      ASSERT_EQ(svc_ranked.size(), live_ranked.size()) << "S=" << S;
      for (std::size_t r = 0; r < live_ranked.size(); ++r) {
        ASSERT_EQ(svc_ranked[r].node, live_ranked[r].node) << "S=" << S;
        ASSERT_EQ(svc_ranked[r].visits, live_ranked[r].visits)
            << "S=" << S;
      }
      ASSERT_EQ(svc_walk.length, live_walk.length) << "S=" << S;
      ASSERT_EQ(svc_walk.segments_used, live_walk.segments_used)
          << "S=" << S;
      ASSERT_EQ(svc_walk.manual_steps, live_walk.manual_steps)
          << "S=" << S;
      ASSERT_EQ(svc_walk.resets, live_walk.resets) << "S=" << S;

      i = hi;
      window = window * 2 + 1;
    }
  }
}

TEST(QueryServiceTest, DenseMapResolutionDuringPublishRotation) {
  // TSan target for the dense index: reader threads resolve every
  // (node, segment) lookup through the shared global->local map while
  // the writer rotates frozen buffers underneath (publish, recycle,
  // delta-apply). The map itself is immutable; what this stresses is
  // that rotation never hands a reader a table the map's row ids have
  // outgrown.
  const std::size_t n = 140;
  const auto events = MixedStream(n, 53, 0.2);
  ShardedEngine<IncrementalPageRank> engine(n, Opts(2, 0.25, 61),
                                            ShardedOptions{4, 2});
  QueryService<IncrementalPageRank> service(&engine);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  auto reader = [&](uint64_t salt) {
    uint64_t q = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::vector<ScoredNode> ranked;
      SnapshotInfo info;
      const Status s = service.PersonalizedTopK(
          static_cast<NodeId>((salt + q * 11) % n), 6, 700,
          /*exclude_friends=*/q % 2 == 0, /*rng_seed=*/q * 3 + salt,
          &ranked, nullptr, &info);
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(info.min_epoch, info.max_epoch);
      EXPECT_LE(info.max_epoch, service.published_epoch());
      ++q;
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread r1(reader, 5);
  std::thread r2(reader, 37);

  std::size_t i = 0;
  while (i < events.size()) {
    const std::size_t hi = std::min(events.size(), i + 12);
    ASSERT_TRUE(service
                    .Ingest(std::span<const EdgeEvent>(events.data() + i,
                                                       hi - i))
                    .ok());
    i = hi;
  }
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_GT(reads.load(), 0u);
  service.Quiesce();
  engine.CheckConsistency();

  // Quiescent: the dense frozen tables hold exactly one global table's
  // worth of rows across the four shards, and the final frozen read is
  // bit-identical to the live sharded walker.
  const auto stats = service.FrozenStats();
  const std::size_t spn =
      engine.shard(0).walk_store().segments_per_node();
  EXPECT_EQ(stats.segment_rows_dense, n * spn);
  EXPECT_EQ(stats.segment_rows_global_model, 4 * n * spn);
  LiveShardedView live_view(&engine);
  BasicPersonalizedPageRankWalker<LiveShardedView, DiGraph> live_walker(
      &live_view, &engine.graph());
  std::vector<ScoredNode> live_ranked;
  std::vector<ScoredNode> svc_ranked;
  ASSERT_TRUE(live_walker
                  .TopK(9, 6, 1500, /*exclude_friends=*/true,
                        /*rng_seed=*/99, &live_ranked, nullptr)
                  .ok());
  ASSERT_TRUE(service
                  .PersonalizedTopK(9, 6, 1500, /*exclude_friends=*/true,
                                    /*rng_seed=*/99, &svc_ranked)
                  .ok());
  ASSERT_EQ(svc_ranked.size(), live_ranked.size());
  for (std::size_t r = 0; r < live_ranked.size(); ++r) {
    EXPECT_EQ(svc_ranked[r].node, live_ranked[r].node);
    EXPECT_EQ(svc_ranked[r].visits, live_ranked[r].visits);
  }
}

TEST(QueryServiceTest, PersonalizedReadsConcurrentWithIngestion) {
  // N reader threads hammer PersonalizedTopK against the frozen views
  // while the writer streams a live mixed ingestion load — the
  // segment-snapshot serving path under ThreadSanitizer. Every read
  // must observe a single frozen epoch no newer than the last publish.
  const std::size_t n = 120;
  const auto events = MixedStream(n, 83, 0.2);
  ShardedEngine<IncrementalPageRank> engine(n, Opts(2, 0.25, 7),
                                            ShardedOptions{3, 2});
  QueryService<IncrementalPageRank> service(&engine);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  auto reader = [&](uint64_t salt) {
    uint64_t q = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::vector<ScoredNode> ranked;
      SnapshotInfo info;
      const Status s = service.PersonalizedTopK(
          static_cast<NodeId>((salt + q * 13) % n), 5, 600,
          /*exclude_friends=*/q % 2 == 0, /*rng_seed=*/q ^ salt, &ranked,
          nullptr, &info);
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(info.min_epoch, info.max_epoch);
      EXPECT_LE(info.max_epoch, service.published_epoch());
      ++q;
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread r1(reader, 1);
  std::thread r2(reader, 29);

  std::size_t i = 0;
  while (i < events.size()) {
    const std::size_t hi = std::min(events.size(), i + 16);
    ASSERT_TRUE(service
                    .Ingest(std::span<const EdgeEvent>(events.data() + i,
                                                       hi - i))
                    .ok());
    i = hi;
  }
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_GT(reads.load(), 0u);
  engine.CheckConsistency();
}

TEST(QueryServiceTest, PersonalizedSalsaReadsConcurrentWithIngestion) {
  // The SALSA twin additionally exercises the frozen adjacency's
  // in-side (backward steps) under concurrent ingestion.
  const std::size_t n = 100;
  const auto events = MixedStream(n, 91, 0.15);
  ShardedEngine<IncrementalSalsa> engine(n, Opts(2, 0.25, 13),
                                         ShardedOptions{4, 2});
  QueryService<IncrementalSalsa> service(&engine);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  auto reader = [&](uint64_t salt) {
    uint64_t q = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::vector<ScoredNode> ranked;
      SnapshotInfo info;
      const Status s = service.PersonalizedTopK(
          static_cast<NodeId>((salt + q * 17) % n), 5, 800,
          /*exclude_friends=*/true, /*rng_seed=*/q ^ salt, &ranked,
          nullptr, &info);
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(info.min_epoch, info.max_epoch);
      ++q;
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread r1(reader, 3);
  std::thread r2(reader, 71);

  std::size_t i = 0;
  while (i < events.size()) {
    const std::size_t hi = std::min(events.size(), i + 16);
    ASSERT_TRUE(service
                    .Ingest(std::span<const EdgeEvent>(events.data() + i,
                                                       hi - i))
                    .ok());
    i = hi;
  }
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_GT(reads.load(), 0u);
  engine.CheckConsistency();
}

TEST(QueryServiceTest, PersonalizedSalsaServesAcrossShards) {
  const std::size_t n = 100;
  Rng rng(9);
  auto edges = ErdosRenyi(n, 800, &rng);
  ShardedEngine<IncrementalSalsa> engine(n, Opts(3, 0.2, 29),
                                         ShardedOptions{4, 2});
  QueryService<IncrementalSalsa> service(&engine);
  std::vector<EdgeEvent> events;
  for (const Edge& e : edges) {
    events.push_back(EdgeEvent{EdgeEvent::Kind::kInsert, e});
  }
  ASSERT_TRUE(service.Ingest(events).ok());
  service.Quiesce();

  std::vector<ScoredNode> ranked;
  SalsaWalkResult walk;
  ASSERT_TRUE(service
                  .PersonalizedTopK(7, 5, 20000, /*exclude_friends=*/true,
                                    /*rng_seed=*/7, &ranked, &walk)
                  .ok());
  ASSERT_FALSE(ranked.empty());
  EXPECT_GT(walk.segments_used, 0u);
  // The walk consumed stored segments from more than one shard's store
  // (any node it fetched beyond the seed's shard).
  for (const ScoredNode& s : ranked) {
    EXPECT_NE(s.node, 7u);
    for (NodeId friend_node : engine.graph().OutNeighbors(7)) {
      EXPECT_NE(s.node, friend_node);
    }
  }
}

TEST(QueryServiceTest, PipelinedStressReadersAndMidPipelineRecovery) {
  // TSan target for the pipeline itself: the three overlapped stages
  // (caller ingest, pool repair, publisher assemble) race against
  // PersonalizedTopK readers on the frozen views while the WAL logs
  // every window; a Checkpoint mid-stream quiesces the pipeline with
  // windows still in flight, and a post-hoc Recover must reproduce the
  // engine bit for bit (the crash-recovery oracle composed with the
  // pipeline). Reader count scales with FASTPPR_STRESS_THREADS (the CI
  // TSan job runs this filter at 4).
  const std::size_t n = 120;
  const auto events = MixedStream(n, 143, 0.2);
  std::size_t readers = 2;
  if (const char* env = std::getenv("FASTPPR_STRESS_THREADS")) {
    readers = std::max<std::size_t>(1, std::atoi(env));
  }
  const std::string dir =
      ::testing::TempDir() + "fastppr_pipelined_stress_ckpt";
  std::filesystem::remove_all(dir);

  ShardedEngine<IncrementalPageRank> engine(n, Opts(2, 0.25, 83),
                                            ShardedOptions{4, 2});
  DurabilityOptions dopts;
  dopts.directory = dir;
  dopts.checkpoint_interval_windows = 0;  // explicit Checkpoint() only
  ASSERT_TRUE(engine.EnableDurability(dopts).ok());
  QueryService<IncrementalPageRank> service(&engine);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  auto reader = [&](uint64_t salt) {
    uint64_t q = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::vector<ScoredNode> ranked;
      SnapshotInfo info;
      const Status s = service.PersonalizedTopK(
          static_cast<NodeId>((salt + q * 19) % n), 5, 600,
          /*exclude_friends=*/q % 2 == 0, /*rng_seed=*/q ^ salt, &ranked,
          nullptr, &info);
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(info.min_epoch, info.max_epoch);
      EXPECT_LE(info.max_epoch, service.published_epoch());
      ++q;
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (std::size_t r = 0; r < readers; ++r) {
    pool.emplace_back(reader, 7 + 31 * r);
  }

  std::size_t i = 0;
  std::size_t window_idx = 0;
  while (i < events.size()) {
    const std::size_t hi = std::min(events.size(), i + 12);
    ASSERT_TRUE(service
                    .Ingest(std::span<const EdgeEvent>(events.data() + i,
                                                       hi - i))
                    .ok());
    if (++window_idx == 7) {
      // Mid-pipeline quiesce: windows may still be in repair/publish
      // flight; Checkpoint must drain them and snapshot a boundary.
      ASSERT_TRUE(engine.Checkpoint().ok());
    }
    i = hi;
  }
  ASSERT_TRUE(engine.Checkpoint().ok());
  done.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();
  EXPECT_GT(reads.load(), 0u);
  service.Quiesce();
  engine.CheckConsistency();

  std::unique_ptr<ShardedEngine<IncrementalPageRank>> recovered;
  ASSERT_TRUE(ShardedEngine<IncrementalPageRank>::Recover(dir, 2,
                                                          &recovered)
                  .ok());
  EXPECT_EQ(recovered->SerializeState(), engine.SerializeState());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fastppr
