// Overload-safe serving tier (DESIGN.md §10): deadlines, admission
// control, controlled-delay shedding, the degradation ladder, fault
// injection, and the TSan stress pairing concurrent admission/shed/
// deadline-expiry with frozen-view publish rotation (this file runs in
// the TSan CI job alongside sharded_engine_test).

#include "fastppr/serve/serving_tier.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fastppr/core/incremental_pagerank.h"
#include "fastppr/core/ppr_walker.h"
#include "fastppr/engine/query_service.h"
#include "fastppr/engine/sharded_engine.h"
#include "fastppr/graph/generators.h"
#include "fastppr/serve/admission_queue.h"
#include "fastppr/serve/deadline.h"
#include "fastppr/serve/retry.h"
#include "fastppr/store/social_store.h"
#include "fastppr/store/walk_store.h"

namespace fastppr {
namespace {

using serve::AdmissionQueue;
using serve::AdmissionQueueOptions;
using serve::Deadline;
using serve::DegradeLevel;
using serve::DequeueOutcome;
using serve::EnqueueOutcome;
using serve::JitteredBackoff;
using serve::QueryClass;
using serve::Request;
using serve::Response;
using serve::RetryPolicy;
using serve::ServingTier;
using serve::ServingTierOptions;

// ---- fake clocks (deterministic timing for queue/deadline tests) ----

std::atomic<uint64_t> g_fake_now{0};
uint64_t FakeNow() { return g_fake_now.load(std::memory_order_relaxed); }

// A clock that advances itself on every read — drives mid-walk deadline
// expiry without sleeps: the Nth poll crosses the deadline.
std::atomic<uint64_t> g_stepping_now{0};
uint64_t SteppingNow() {
  return g_stepping_now.fetch_add(1000, std::memory_order_relaxed);
}

// ---- Deadline -------------------------------------------------------

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_FALSE(d.has_deadline());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_nanos(), ~uint64_t{0});
}

TEST(DeadlineTest, ExpiresOnFakeClock) {
  g_fake_now.store(1000);
  Deadline d = Deadline::AfterNanos(500, &FakeNow);
  EXPECT_TRUE(d.has_deadline());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_nanos(), 500u);
  g_fake_now.store(1499);
  EXPECT_FALSE(d.expired());
  g_fake_now.store(1500);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_nanos(), 0u);
}

TEST(DeadlineTest, ExpiredSentinelAndSaturation) {
  EXPECT_TRUE(Deadline::Expired(&FakeNow).expired());
  g_fake_now.store(42);
  // "Practically forever" must not wrap into the past.
  Deadline huge = Deadline::AfterNanos(~uint64_t{0} - 10, &FakeNow);
  EXPECT_TRUE(huge.has_deadline());
  EXPECT_FALSE(huge.expired());
}

// ---- AdmissionQueue -------------------------------------------------

AdmissionQueueOptions FakeClockQueueOptions(std::size_t capacity) {
  AdmissionQueueOptions opt;
  opt.capacity = capacity;
  opt.target_delay_ns = 1000;
  opt.shed_interval_ns = 4000;
  opt.clock = &FakeNow;
  return opt;
}

TEST(AdmissionQueueTest, FifoWhenFresh) {
  g_fake_now.store(0);
  AdmissionQueue<int> q(FakeClockQueueOptions(8));
  int a = 1, b = 2;
  EXPECT_EQ(q.TryEnqueue(&a), EnqueueOutcome::kQueued);
  EXPECT_EQ(q.TryEnqueue(&b), EnqueueOutcome::kQueued);
  int out = 0;
  uint64_t wait = 123;
  EXPECT_EQ(q.TryDequeue(&out, &wait), DequeueOutcome::kAdmitted);
  EXPECT_EQ(out, 1);  // oldest first while under the delay target
  EXPECT_EQ(wait, 0u);
  EXPECT_EQ(q.TryDequeue(&out), DequeueOutcome::kAdmitted);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(q.TryDequeue(&out), DequeueOutcome::kEmpty);
}

TEST(AdmissionQueueTest, ShedsAtCapacityWithRetryAfterHint) {
  g_fake_now.store(0);
  AdmissionQueue<int> q(FakeClockQueueOptions(2));
  int v = 7;
  EXPECT_EQ(q.TryEnqueue(&v), EnqueueOutcome::kQueued);
  EXPECT_EQ(q.TryEnqueue(&v), EnqueueOutcome::kQueued);
  uint64_t retry_after = 0;
  EXPECT_EQ(q.TryEnqueue(&v, &retry_after), EnqueueOutcome::kFull);
  // Full fresh queue: hint is the whole controlled-delay horizon.
  EXPECT_EQ(retry_after, 5000u);
  g_fake_now.store(3000);  // backlog has aged 3µs toward the horizon
  EXPECT_EQ(q.TryEnqueue(&v, &retry_after), EnqueueOutcome::kFull);
  EXPECT_EQ(retry_after, 2000u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.high_water(), 2u);
}

TEST(AdmissionQueueTest, LifoUnderPressure) {
  g_fake_now.store(0);
  AdmissionQueue<int> q(FakeClockQueueOptions(8));
  int a = 1, b = 2;
  EXPECT_EQ(q.TryEnqueue(&a), EnqueueOutcome::kQueued);
  g_fake_now.store(1500);  // oldest sojourn 1500 >= target 1000
  EXPECT_EQ(q.TryEnqueue(&b), EnqueueOutcome::kQueued);
  int out = 0;
  uint64_t wait = 0;
  // Pressure: the NEWEST entry is served (flat admitted latency) while
  // the oldest ages toward the shed horizon.
  EXPECT_EQ(q.TryDequeue(&out, &wait), DequeueOutcome::kAdmitted);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(wait, 0u);
}

TEST(AdmissionQueueTest, ControlledDelayShedsHopelessEntries) {
  g_fake_now.store(0);
  AdmissionQueue<int> q(FakeClockQueueOptions(8));
  int a = 1, b = 2;
  EXPECT_EQ(q.TryEnqueue(&a), EnqueueOutcome::kQueued);
  g_fake_now.store(100);
  EXPECT_EQ(q.TryEnqueue(&b), EnqueueOutcome::kQueued);
  g_fake_now.store(5000);  // a's sojourn 5000 >= target+interval 5000
  int out = 0;
  uint64_t wait = 0;
  EXPECT_EQ(q.TryDequeue(&out, &wait), DequeueOutcome::kShed);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(wait, 5000u);
  // b (sojourn 4900 >= target but < horizon) is admitted, LIFO rules.
  EXPECT_EQ(q.TryDequeue(&out, &wait), DequeueOutcome::kAdmitted);
  EXPECT_EQ(out, 2);
}

TEST(AdmissionQueueTest, CloseShedsNewAndDrainsOld) {
  g_fake_now.store(0);
  AdmissionQueue<int> q(FakeClockQueueOptions(4));
  int a = 1, b = 2;
  EXPECT_EQ(q.TryEnqueue(&a), EnqueueOutcome::kQueued);
  q.Close();
  EXPECT_EQ(q.TryEnqueue(&b), EnqueueOutcome::kClosed);
  int out = 0;
  EXPECT_TRUE(q.DrainClosed(&out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.DrainClosed(&out));
}

// Closed vs full are DISTINCT enqueue outcomes — the shutdown/shed
// mislabel regression: a closed queue at capacity must still report
// kClosed (shutdown), never kFull (overload + retry hint).
TEST(AdmissionQueueTest, ClosedReportsClosedEvenWhenFull) {
  g_fake_now.store(0);
  AdmissionQueue<int> q(FakeClockQueueOptions(1));
  int a = 1, b = 2;
  EXPECT_EQ(q.TryEnqueue(&a), EnqueueOutcome::kQueued);
  EXPECT_EQ(q.TryEnqueue(&b), EnqueueOutcome::kFull);
  q.Close();
  EXPECT_EQ(q.TryEnqueue(&b), EnqueueOutcome::kClosed);
}

// ---- retry backoff --------------------------------------------------

TEST(RetryTest, DeterministicForSameSeed) {
  RetryPolicy policy;
  JitteredBackoff a(policy, 42);
  JitteredBackoff b(policy, 42);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.NextDelayNanos(), b.NextDelayNanos());
  }
}

TEST(RetryTest, JitterWindowDoublesUpToCap) {
  RetryPolicy policy;
  policy.base_delay_ns = 1000;
  policy.max_delay_ns = 6000;
  policy.max_attempts = 10;
  JitteredBackoff backoff(policy, 1);
  EXPECT_EQ(backoff.JitterWindowNanos(0), 1000u);
  EXPECT_EQ(backoff.JitterWindowNanos(1), 2000u);
  EXPECT_EQ(backoff.JitterWindowNanos(2), 4000u);
  EXPECT_EQ(backoff.JitterWindowNanos(3), 6000u);  // capped
  EXPECT_EQ(backoff.JitterWindowNanos(9), 6000u);
  for (std::size_t attempt = 0; attempt < 6; ++attempt) {
    const uint64_t window = backoff.JitterWindowNanos(attempt);
    const uint64_t d = backoff.NextDelayNanos();
    EXPECT_LE(d, window);
  }
}

TEST(RetryTest, ServerHintIsAFloor) {
  RetryPolicy policy;
  policy.base_delay_ns = 10;
  policy.max_delay_ns = 20;
  JitteredBackoff backoff(policy, 3);
  EXPECT_GE(backoff.NextDelayNanos(/*server_hint_ns=*/999999), 999999u);
}

TEST(RetryTest, AttemptBudget) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  JitteredBackoff backoff(policy, 5);
  EXPECT_TRUE(backoff.ShouldRetry());       // attempt 0 done, 1 allowed
  backoff.NextDelayNanos();
  EXPECT_TRUE(backoff.ShouldRetry());
  backoff.NextDelayNanos();
  EXPECT_FALSE(backoff.ShouldRetry());      // all 3 attempts consumed
  EXPECT_EQ(backoff.attempts_consumed(), 2u);
}

// ---- walker deadline cancellation -----------------------------------

struct FlatFixture {
  explicit FlatFixture(std::size_t n, std::size_t m, uint64_t seed)
      : social(n) {
    Rng rng(seed);
    auto edges = ErdosRenyi(n, m, &rng);
    for (const Edge& e : edges) {
      EXPECT_TRUE(social.AddEdge(e.src, e.dst).ok());
    }
    store.Init(social.graph(), /*R=*/3, /*eps=*/0.2, seed + 1);
  }
  SocialStore social;
  WalkStore store;
};

TEST(WalkerDeadlineTest, ExpiredDeadlineDoesZeroAccumulation) {
  FlatFixture f(50, 400, 11);
  WalkerOptions opts;
  opts.deadline = Deadline::Expired(&FakeNow);
  PersonalizedPageRankWalker walker(&f.store, &f.social, opts);
  PersonalizedWalkResult result;
  Status s = walker.Walk(3, 5000, 2, &result);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_EQ(result.length, 0u);
  EXPECT_EQ(result.fetches, 0u);
  EXPECT_TRUE(result.visit_counts.empty());
}

TEST(WalkerDeadlineTest, MidWalkCooperativeCancellation) {
  FlatFixture f(50, 400, 13);
  // The stepping clock advances 1µs per read; the deadline allows ~32
  // polls. With stride 16 the walk is cancelled mid-accumulation.
  g_stepping_now.store(0);
  WalkerOptions opts;
  opts.deadline = Deadline::AfterNanos(32'000, &SteppingNow);
  opts.deadline_check_stride = 16;
  PersonalizedPageRankWalker walker(&f.store, &f.social, opts);
  PersonalizedWalkResult result;
  Status s = walker.Walk(3, 1'000'000, 2, &result);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_GT(result.length, 0u);          // it did start
  EXPECT_LT(result.length, 1'000'000u);  // and stopped well short
}

TEST(WalkerDeadlineTest, UnexpiredDeadlineDoesNotPerturbTheWalk) {
  FlatFixture f(50, 400, 17);
  PersonalizedPageRankWalker plain(&f.store, &f.social);
  PersonalizedWalkResult expected;
  ASSERT_TRUE(plain.Walk(5, 4000, 9, &expected).ok());

  WalkerOptions opts;
  opts.deadline = Deadline::AfterMillis(60'000);  // generous, real clock
  PersonalizedPageRankWalker guarded(&f.store, &f.social, opts);
  PersonalizedWalkResult got;
  ASSERT_TRUE(guarded.Walk(5, 4000, 9, &got).ok());
  // Deadline polling must not touch the RNG stream: bit-identical walk.
  EXPECT_EQ(got.length, expected.length);
  EXPECT_EQ(got.resets, expected.resets);
  EXPECT_EQ(got.visit_counts, expected.visit_counts);
}

// ---- QueryService deadline threading --------------------------------

using PrEngine = ShardedEngine<IncrementalPageRank>;
using PrService = QueryService<IncrementalPageRank>;

std::vector<EdgeEvent> InsertEvents(std::size_t n, std::size_t m,
                                    uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyi(n, m, &rng);
  std::vector<EdgeEvent> events;
  events.reserve(edges.size());
  for (const Edge& e : edges) {
    events.push_back(EdgeEvent{EdgeEvent::Kind::kInsert, e});
  }
  return events;
}

MonteCarloOptions TestMcOptions() {
  MonteCarloOptions mc;
  mc.walks_per_node = 3;
  mc.epsilon = 0.2;
  mc.seed = 90;
  return mc;
}

TEST(QueryServiceDeadlineTest, ExpiredDeadlineShortCircuitsTheService) {
  const std::size_t n = 200;
  PrEngine engine(n, TestMcOptions(), ShardedOptions{2, 2});
  PrService service(&engine);
  const auto events = InsertEvents(n, 1200, 21);
  ASSERT_TRUE(
      service.Ingest(std::span<const EdgeEvent>(events.data(), events.size()))
          .ok());

  WalkerOptions wopts;
  wopts.deadline = Deadline::Expired(&FakeNow);
  std::vector<ScoredNode> ranked;
  PersonalizedWalkResult stats;
  Status s = service.PersonalizedTopK(3, 10, 2000, true, 7, wopts, &ranked,
                                      &stats);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  // Short-circuited before the walk: no accumulation happened.
  EXPECT_EQ(stats.length, 0u);
  EXPECT_TRUE(ranked.empty());
}

TEST(QueryServiceDeadlineTest, GenerousDeadlineMatchesNoDeadline) {
  const std::size_t n = 200;
  PrEngine engine(n, TestMcOptions(), ShardedOptions{2, 2});
  PrService service(&engine);
  const auto events = InsertEvents(n, 1200, 23);
  ASSERT_TRUE(
      service.Ingest(std::span<const EdgeEvent>(events.data(), events.size()))
          .ok());

  std::vector<ScoredNode> plain;
  ASSERT_TRUE(service.PersonalizedTopK(3, 10, 2000, true, 7, &plain).ok());

  WalkerOptions wopts;
  wopts.deadline = Deadline::AfterMillis(60'000);
  std::vector<ScoredNode> guarded;
  ASSERT_TRUE(
      service.PersonalizedTopK(3, 10, 2000, true, 7, wopts, &guarded).ok());
  ASSERT_EQ(guarded.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(guarded[i].node, plain[i].node);
    EXPECT_EQ(guarded[i].visits, plain[i].visits);
  }
}

// ---- ServingTier ----------------------------------------------------

struct TierFixture {
  TierFixture(std::size_t n, const ServingTierOptions& topt)
      : engine(n, TestMcOptions(), ShardedOptions{2, 2}),
        service(&engine),
        tier(&service, topt) {
    const auto events = InsertEvents(n, 6 * n, 31);
    EXPECT_TRUE(service
                    .Ingest(std::span<const EdgeEvent>(events.data(),
                                                       events.size()))
                    .ok());
  }
  PrEngine engine;
  PrService service;
  ServingTier<IncrementalPageRank> tier;
};

/// Collects responses and counts them; Wait blocks until `expected`
/// callbacks fired (the every-request-resolves oracle).
struct Collector {
  void Done(const Response& resp) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(resp);
    cv.notify_all();
  }
  std::function<void(const Response&)> Callback() {
    return [this](const Response& r) { Done(r); };
  }
  bool WaitFor(std::size_t expected, int timeout_ms) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return responses.size() >= expected; });
  }
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Response> responses;
};

ServingTierOptions SmallTierOptions() {
  ServingTierOptions topt;
  topt.num_workers = 2;
  topt.queue.capacity = 16;
  topt.queue.target_delay_ns = 2'000'000;
  topt.queue.shed_interval_ns = 10'000'000;
  return topt;
}

TEST(ServingTierTest, ServesAllThreeClassesAtFullFidelity) {
  TierFixture f(200, SmallTierOptions());
  Collector col;
  for (int i = 0; i < 3; ++i) {
    Request req;
    req.cls = i == 0   ? QueryClass::kTopK
              : i == 1 ? QueryClass::kScore
                       : QueryClass::kPersonalized;
    req.node = static_cast<NodeId>(3 + i);
    req.walk_length = 1000;
    req.rng_seed = 7 + i;
    req.on_done = col.Callback();
    f.tier.Submit(std::move(req));
  }
  ASSERT_TRUE(col.WaitFor(3, 10'000));
  std::size_t with_payload = 0;
  for (const Response& r : col.responses) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.degrade, DegradeLevel::kFull);
    if (!r.topk.empty() || !r.ranked.empty() || r.score >= 0.0) {
      ++with_payload;
    }
  }
  EXPECT_EQ(with_payload, 3u);
  const auto outcomes = f.tier.outcomes();
  EXPECT_EQ(outcomes.admitted_full, 3u);
  EXPECT_EQ(outcomes.resolved(), f.tier.submitted());
}

TEST(ServingTierTest, ExpiredDeadlineResolvesAsDeadlineExceeded) {
  TierFixture f(200, SmallTierOptions());
  Collector col;
  Request req;
  req.cls = QueryClass::kPersonalized;
  req.node = 5;
  req.walk_length = 1000;
  req.deadline = Deadline::Expired();
  req.on_done = col.Callback();
  f.tier.Submit(std::move(req));
  ASSERT_TRUE(col.WaitFor(1, 10'000));
  EXPECT_TRUE(col.responses[0].status.IsDeadlineExceeded());
  EXPECT_EQ(f.tier.outcomes().deadline_expired, 1u);
}

// Stalled workers + a burst past capacity: every request resolves as
// admitted / degraded / shed / deadline-expired, the shed ones carry a
// retry-after hint, the queue never exceeds its bound, and answers
// served under pressure are labelled down the degradation ladder.
TEST(ServingTierTest, OverloadBurstShedsLabelsAndStaysBounded) {
  ServingTierOptions topt = SmallTierOptions();
  topt.num_workers = 1;
  topt.queue.capacity = 8;
  topt.reduce_depth_frac = 0.25;    // degrade early: depth >= 2
  topt.fallback_depth_frac = 0.625; // fallback at depth >= 5
  TierFixture f(200, topt);

  // Gate the single worker so the queue builds depth deterministically.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  f.tier.SetFaultHook([&](QueryClass) {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  });

  Collector col;
  const std::size_t burst = 24;  // 3× capacity
  for (std::size_t i = 0; i < burst; ++i) {
    Request req;
    req.cls = QueryClass::kPersonalized;
    req.node = static_cast<NodeId>(i % 100);
    req.walk_length = 2000;
    req.rng_seed = i;
    req.on_done = col.Callback();
    f.tier.Submit(std::move(req));
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
    gate_cv.notify_all();
  }
  ASSERT_TRUE(col.WaitFor(burst, 20'000));

  std::size_t ok_full = 0, ok_degraded = 0, shed = 0, expired = 0;
  for (const Response& r : col.responses) {
    if (r.status.ok()) {
      if (r.degraded()) {
        ++ok_degraded;
      } else {
        ++ok_full;
      }
    } else if (r.status.IsResourceExhausted()) {
      ++shed;
      EXPECT_GT(r.retry_after_ns, 0u);
    } else if (r.status.IsDeadlineExceeded()) {
      ++expired;
    } else {
      ADD_FAILURE() << "unexpected outcome: " << r.status.ToString();
    }
  }
  EXPECT_EQ(ok_full + ok_degraded + shed + expired, burst);
  // The burst was 3× capacity with a stalled worker: shedding happened.
  EXPECT_GT(shed, 0u);
  // Depth built past the ladder rungs while the worker was gated, so
  // pressure-era answers are labelled degraded.
  EXPECT_GT(ok_degraded, 0u);
  // The boundedness proof: the queue never grew past its capacity.
  EXPECT_LE(f.tier.queue_high_water(QueryClass::kPersonalized),
            f.tier.queue_capacity(QueryClass::kPersonalized));
  EXPECT_EQ(f.tier.outcomes().resolved(), f.tier.submitted());
}

// Slow-shard fault injection: personalized execution stalls 2ms per
// request (the stalled-dependency model), offered load keeps arriving
// open-loop. The service must never wedge — every request resolves,
// queues stay bounded, and the cheap classes keep being served.
TEST(ServingTierTest, SlowShardFaultInjectionNeverWedges) {
  ServingTierOptions topt = SmallTierOptions();
  topt.num_workers = 2;
  topt.queue.capacity = 8;
  topt.queue.target_delay_ns = 1'000'000;
  topt.queue.shed_interval_ns = 4'000'000;
  TierFixture f(200, topt);

  f.tier.SetFaultHook([](QueryClass cls) {
    if (cls == QueryClass::kPersonalized) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  Collector col;
  const std::size_t total = 120;
  for (std::size_t i = 0; i < total; ++i) {
    Request req;
    req.cls = i % 3 == 0 ? QueryClass::kPersonalized
              : i % 3 == 1 ? QueryClass::kTopK
                           : QueryClass::kScore;
    req.node = static_cast<NodeId>(i % 100);
    req.walk_length = 1000;
    req.rng_seed = i;
    req.deadline = Deadline::AfterMillis(200);
    req.on_done = col.Callback();
    f.tier.Submit(std::move(req));
    if (i % 8 == 7) std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  // No silent hangs: everything resolves well inside the deadline era.
  ASSERT_TRUE(col.WaitFor(total, 30'000));
  std::size_t cheap_served = 0;
  for (const Response& r : col.responses) {
    EXPECT_TRUE(r.status.ok() || r.status.IsResourceExhausted() ||
                r.status.IsDeadlineExceeded() || r.status.IsUnavailable())
        << r.status.ToString();
    if (r.status.ok() && r.ranked.empty()) ++cheap_served;
  }
  EXPECT_GT(cheap_served, 0u);
  for (QueryClass cls : {QueryClass::kTopK, QueryClass::kScore,
                         QueryClass::kPersonalized}) {
    EXPECT_LE(f.tier.queue_high_water(cls), f.tier.queue_capacity(cls));
  }
  EXPECT_EQ(f.tier.outcomes().resolved(), f.tier.submitted());
}

TEST(ServingTierTest, ShutdownResolvesBacklogAsUnavailable) {
  ServingTierOptions topt = SmallTierOptions();
  topt.num_workers = 1;
  TierFixture f(200, topt);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  f.tier.SetFaultHook([&](QueryClass) {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  });
  Collector col;
  for (std::size_t i = 0; i < 8; ++i) {
    Request req;
    req.cls = QueryClass::kScore;
    req.node = static_cast<NodeId>(i);
    req.on_done = col.Callback();
    f.tier.Submit(std::move(req));
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
    gate_cv.notify_all();
  }
  f.tier.Shutdown();
  ASSERT_TRUE(col.WaitFor(8, 10'000));
  EXPECT_EQ(f.tier.outcomes().resolved(), f.tier.submitted());
  // Submissions after shutdown resolve too (Unavailable), immediately.
  Request late;
  late.cls = QueryClass::kScore;
  late.on_done = col.Callback();
  f.tier.Submit(std::move(late));
  ASSERT_TRUE(col.WaitFor(9, 10'000));
  bool saw_unavailable_late = col.responses.back().status.IsUnavailable();
  EXPECT_TRUE(saw_unavailable_late);
}

// The shutdown-mislabel race, pinned deterministically: a Submit that
// passes the stopping_ check just before Close() lands must resolve
// Unavailable (shutdown — don't retry this server), not
// ResourceExhausted + retry hint (overload — back off and retry). The
// submit-race hook runs Shutdown() inside the exact window, so
// TryEnqueue sees a closed queue and the kClosed/kFull distinction is
// what routes the answer.
TEST(ServingTierTest, SubmitRacingCloseIsUnavailableNotOverloaded) {
  TierFixture f(200, SmallTierOptions());
  std::atomic<bool> fired{false};
  f.tier.SetSubmitRaceHook([&](QueryClass) {
    if (!fired.exchange(true)) f.tier.Shutdown();
  });
  Collector col;
  Request req;
  req.cls = QueryClass::kScore;
  req.node = 3;
  req.on_done = col.Callback();
  f.tier.Submit(std::move(req));
  ASSERT_TRUE(col.WaitFor(1, 10'000));
  const Response& r = col.responses[0];
  EXPECT_TRUE(r.status.IsUnavailable()) << r.status.ToString();
  EXPECT_FALSE(r.status.IsResourceExhausted());
  EXPECT_EQ(f.tier.outcomes().unavailable, 1u);
  EXPECT_EQ(f.tier.outcomes().shed, 0u);
}

// The degradation ladder must read the REQUEST'S OWN class queue
// capacity. With a small personalized queue next to huge cheap-class
// queues, a backlog that fills the personalized queue is deep relative
// to ITS capacity — under the old queues_[0] bug the fractions were
// computed against the 256-entry TopK capacity and no request ever
// degraded.
TEST(ServingTierTest, LadderUsesOwnClassCapacity) {
  ServingTierOptions topt = SmallTierOptions();
  topt.num_workers = 1;
  topt.queue.capacity = 256;  // kTopK / kScore (and the buggy divisor)
  topt.queue_capacity[static_cast<std::size_t>(QueryClass::kPersonalized)] =
      8;
  // Generous CoDel horizon so nothing sheds while the worker is gated.
  topt.queue.target_delay_ns = 50'000'000;
  topt.queue.shed_interval_ns = 200'000'000;
  TierFixture f(200, topt);

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool hook_entered = false;
  bool gate_open = false;
  f.tier.SetFaultHook([&](QueryClass) {
    std::unique_lock<std::mutex> lock(gate_mu);
    hook_entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  });

  Collector col;
  auto submit_one = [&](std::size_t i) {
    Request req;
    req.cls = QueryClass::kPersonalized;
    req.node = static_cast<NodeId>(i);
    req.walk_length = 2000;
    req.rng_seed = i;
    req.on_done = col.Callback();
    f.tier.Submit(std::move(req));
  };
  submit_one(0);
  {
    // The worker is inside the hook: request 0 is dequeued, so the
    // remaining 8 fill the personalized queue to exactly its capacity.
    std::unique_lock<std::mutex> lock(gate_mu);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return hook_entered; }));
  }
  for (std::size_t i = 1; i < 9; ++i) submit_one(i);
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
    gate_cv.notify_all();
  }
  ASSERT_TRUE(col.WaitFor(9, 20'000));
  std::size_t degraded = 0;
  for (const Response& r : col.responses) {
    if (r.status.ok() && r.degraded()) ++degraded;
  }
  // Depth 8 of capacity 8 is past both rungs (0.5 / 0.85); against the
  // buggy 256-entry capacity it is past neither.
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(f.tier.outcomes().resolved(), f.tier.submitted());
}

// A dequeue-side (CoDel) shed must report the sojourn that doomed the
// request — the old worker loop dropped queue_ns on the kShed path and
// the response claimed zero queueing. Fake clocks end to end make the
// expected sojourn exact.
TEST(ServingTierTest, DequeueShedRecordsMeasuredSojourn) {
  g_fake_now.store(0);
  ServingTierOptions topt;
  topt.num_workers = 1;
  topt.queue.capacity = 16;
  topt.queue.target_delay_ns = 2'000'000;
  topt.queue.shed_interval_ns = 10'000'000;
  topt.queue.clock = &FakeNow;
  topt.clock = &FakeNow;
  TierFixture f(200, topt);

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool hook_entered = false;
  bool gate_open = false;
  f.tier.SetFaultHook([&](QueryClass) {
    std::unique_lock<std::mutex> lock(gate_mu);
    hook_entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  });

  Collector col;
  Request a;
  a.cls = QueryClass::kScore;
  a.node = 1;
  a.on_done = col.Callback();
  f.tier.Submit(std::move(a));
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return hook_entered; }));
  }
  // B enqueues at fake t=0 while the worker is wedged in A, then the
  // clock jumps past target + interval: B's next dequeue is a shed
  // carrying exactly that sojourn.
  Request b;
  b.cls = QueryClass::kScore;
  b.node = 2;
  b.on_done = col.Callback();
  f.tier.Submit(std::move(b));
  g_fake_now.store(13'000'000);
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
    gate_cv.notify_all();
  }
  ASSERT_TRUE(col.WaitFor(2, 10'000));
  std::size_t ok = 0, shed = 0;
  for (const Response& r : col.responses) {
    if (r.status.ok()) {
      ++ok;
    } else if (r.status.IsResourceExhausted()) {
      ++shed;
      EXPECT_EQ(r.queue_ns, 13'000'000u);
      EXPECT_GT(r.retry_after_ns, 0u);
    }
  }
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(shed, 1u);
}

// The TSan stress (runs in the TSan CI job): concurrent admission,
// shedding and deadline expiry racing the frozen-view publish rotation
// — ingestion keeps publishing (count seqlocks + frozen segment views)
// while submitter threads pour mixed traffic with tight deadlines
// through the tier.
TEST(ServingTierTest, ConcurrentAdmissionRacingPublishRotation) {
  ServingTierOptions topt = SmallTierOptions();
  topt.num_workers = 2;
  topt.queue.capacity = 32;
  const std::size_t n = 300;
  TierFixture f(n, topt);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      auto edges = ErdosRenyi(n, 64, &rng);
      std::vector<EdgeEvent> window;
      window.reserve(edges.size());
      for (const Edge& e : edges) {
        window.push_back(EdgeEvent{EdgeEvent::Kind::kInsert, e});
      }
      // Rejected duplicates are fine — the publish rotation still runs.
      f.service
          .Ingest(std::span<const EdgeEvent>(window.data(), window.size()))
          .ok();
    }
  });

  constexpr std::size_t kPerThread = 150;
  constexpr std::size_t kThreads = 3;
  Collector col;
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        Request req;
        req.cls = i % 4 == 0 ? QueryClass::kPersonalized
                  : i % 4 == 1 ? QueryClass::kTopK
                               : QueryClass::kScore;
        req.node = static_cast<NodeId>((t * 131 + i) % n);
        req.walk_length = 500;
        req.rng_seed = t * 1000 + i;
        // A mix of tight and comfortable deadlines so expiry races
        // admission and execution.
        req.deadline = i % 5 == 0 ? Deadline::AfterMicros(50)
                                  : Deadline::AfterMillis(100);
        req.on_done = col.Callback();
        f.tier.Submit(std::move(req));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  ASSERT_TRUE(col.WaitFor(kThreads * kPerThread, 60'000));
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(f.tier.outcomes().resolved(), f.tier.submitted());
  for (const Response& r : col.responses) {
    EXPECT_TRUE(r.status.ok() || r.status.IsResourceExhausted() ||
                r.status.IsDeadlineExceeded() || r.status.IsUnavailable())
        << r.status.ToString();
  }
}

}  // namespace
}  // namespace fastppr
