#ifndef FASTPPR_CORE_SALSA_WALKER_H_
#define FASTPPR_CORE_SALSA_WALKER_H_

#include <concepts>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fastppr/core/ppr_walker.h"
#include "fastppr/graph/types.h"
#include "fastppr/store/salsa_walk_store.h"
#include "fastppr/store/social_store.h"
#include "fastppr/util/check.h"
#include "fastppr/util/random.h"
#include "fastppr/util/status.h"

namespace fastppr {

/// Outcome of one stitched personalized SALSA walk. Hub-side and
/// authority-side visits are tracked separately: a friend recommender
/// ranks by authority score (relevance), Section 1.1 of the paper.
struct SalsaWalkResult {
  std::unordered_map<NodeId, int64_t> hub_counts;
  std::unordered_map<NodeId, int64_t> authority_counts;
  uint64_t length = 0;
  uint64_t fetches = 0;
  uint64_t segments_used = 0;
  uint64_t manual_steps = 0;
  uint64_t resets = 0;
};

/// Algorithm 1 adapted to personalized SALSA: the walk alternates forward
/// and backward steps, resets (to the seed, in hub role) only before
/// forward steps, and stitches the stored SalsaWalkStore segments whose
/// start direction matches the walk's current parity.
///
/// `StoreView` abstracts where the segments live (flat SalsaWalkStore, a
/// sharded view routing to the shard owning each node, or a frozen
/// snapshot view); it must provide walks_per_node(), epsilon() and
/// GetSegment(node, k). `GraphView` abstracts the adjacency (live
/// DiGraph, or a FrozenAdjacency captured WITH its in-side — SALSA walks
/// step backwards).
template <typename StoreView, typename GraphView = DiGraph>
class BasicPersonalizedSalsaWalker {
 public:
  BasicPersonalizedSalsaWalker(const StoreView* store,
                               const GraphView* graph,
                               WalkerOptions options = WalkerOptions())
      : store_(store), graph_(graph), options_(options) {
    FASTPPR_CHECK(store_ != nullptr && graph_ != nullptr);
  }

  /// Flat-deployment convenience: walks the social store's (uncounted)
  /// local graph replica.
  BasicPersonalizedSalsaWalker(const StoreView* store,
                               const SocialStore* social,
                               WalkerOptions options = WalkerOptions())
    requires std::same_as<GraphView, DiGraph>
      : BasicPersonalizedSalsaWalker(store, CheckedGraph(social),
                                     options) {}

  Status Walk(NodeId seed, uint64_t length, uint64_t rng_seed,
              SalsaWalkResult* out) const {
    if (seed >= graph_->num_nodes()) {
      return Status::InvalidArgument("seed node out of range");
    }
    *out = SalsaWalkResult{};
    // Deadline contract identical to the PageRank walker: zero
    // accumulation when already expired, cooperative poll every
    // `deadline_check_stride` appended positions afterwards.
    const serve::Deadline& deadline = options_.deadline;
    if (deadline.expired()) {
      return Status::DeadlineExceeded("walk deadline expired");
    }
    const uint64_t stride =
        options_.deadline_check_stride == 0 ? 1
                                            : options_.deadline_check_stride;
    uint64_t next_deadline_poll = stride;
    Rng rng(rng_seed);
    const std::size_t R = store_->walks_per_node();
    const double eps = store_->epsilon();
    const GraphView& g = *graph_;

    // Per-node consumed-segment counters, split by start direction.
    // Presence in `fetched` == the node's segments + adjacency are local.
    std::unordered_map<NodeId, uint32_t> used_fwd;
    std::unordered_map<NodeId, uint32_t> used_bwd;
    std::unordered_set<NodeId> fetched;

    // Parity: true = hub side (a forward step is due), false = authority.
    bool hub_side = true;
    NodeId cur = seed;

    auto visit = [out](NodeId v, bool hub) {
      if (hub) {
        ++out->hub_counts[v];
      } else {
        ++out->authority_counts[v];
      }
      ++out->length;
    };
    auto charge_fetch = [this, out]() -> bool {
      ++out->fetches;
      return options_.max_fetches == 0 ||
             out->fetches <= options_.max_fetches;
    };
    auto reset_to_seed = [&]() {
      visit(seed, /*hub=*/true);
      ++out->resets;
      cur = seed;
      hub_side = true;
    };

    visit(seed, /*hub=*/true);
    while (out->length < length) {
      if (deadline.has_deadline() && out->length >= next_deadline_poll) {
        if (deadline.expired()) {
          return Status::DeadlineExceeded("walk deadline expired");
        }
        next_deadline_poll = out->length + stride;
      }
      if (!fetched.count(cur)) {
        if (!charge_fetch()) {
          return Status::ResourceExhausted("fetch budget exhausted");
        }
        fetched.insert(cur);
      }
      auto& used = hub_side ? used_fwd : used_bwd;
      uint32_t& consumed = used[cur];
      if (consumed < R) {
        // Stored segments with matching start direction: [0, R) are
        // forward-start, [R, 2R) are backward-start.
        const std::size_t slot = hub_side ? consumed : R + consumed;
        const auto seg = store_->GetSegment(cur, slot);
        ++consumed;
        ++out->segments_used;
        bool side = hub_side;
        for (std::size_t p = 1; p < seg.size() && out->length < length;
             ++p) {
          side = !side;
          visit(seg.node(p), side);
        }
        if (out->length < length) reset_to_seed();
        continue;
      }
      // Manual simulation.
      if (hub_side) {
        if (rng.Bernoulli(eps)) {
          reset_to_seed();
          continue;
        }
        if (options_.fetch_mode == FetchMode::kSegmentsAndOneEdge &&
            !charge_fetch()) {
          return Status::ResourceExhausted("fetch budget exhausted");
        }
        if (g.OutDegree(cur) == 0) {
          reset_to_seed();
          continue;
        }
        cur = g.RandomOutNeighbor(cur, &rng);
        hub_side = false;
      } else {
        if (options_.fetch_mode == FetchMode::kSegmentsAndOneEdge &&
            !charge_fetch()) {
          return Status::ResourceExhausted("fetch budget exhausted");
        }
        if (g.InDegree(cur) == 0) {
          reset_to_seed();
          continue;
        }
        cur = g.RandomInNeighbor(cur, &rng);
        hub_side = true;
      }
      ++out->manual_steps;
      visit(cur, hub_side);
    }
    return Status::OK();
  }

  /// k highest-authority nodes of a stitched walk, excluding the seed and
  /// (optionally) its direct out-neighbours.
  Status TopKAuthorities(NodeId seed, std::size_t k, uint64_t length,
                         bool exclude_friends, uint64_t rng_seed,
                         std::vector<ScoredNode>* ranked,
                         SalsaWalkResult* walk_stats = nullptr) const {
    SalsaWalkResult walk;
    FASTPPR_RETURN_IF_ERROR(Walk(seed, length, rng_seed, &walk));
    std::vector<NodeId> exclude{seed};
    if (exclude_friends) {
      for (NodeId v : graph_->OutNeighbors(seed)) {
        exclude.push_back(v);
      }
    }
    *ranked = RankVisits(walk.authority_counts, k, walk.length, exclude);
    if (walk_stats != nullptr) *walk_stats = std::move(walk);
    return Status::OK();
  }

 private:
  /// Aborts (instead of dereferencing) on a null social store.
  static const DiGraph* CheckedGraph(const SocialStore* social) {
    FASTPPR_CHECK(social != nullptr);
    return &social->graph();
  }

  const StoreView* store_;
  const GraphView* graph_;
  WalkerOptions options_;
};

/// The flat (single-store) walker used throughout the reproduction.
using PersonalizedSalsaWalker = BasicPersonalizedSalsaWalker<SalsaWalkStore>;

}  // namespace fastppr

#endif  // FASTPPR_CORE_SALSA_WALKER_H_
