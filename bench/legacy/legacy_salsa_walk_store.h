// Frozen copy of the pre-slab (PR 0 seed) walk-store layout: one heap-
// allocated std::vector per segment path and per inverted-index row.
// Kept ONLY as the "before" side of the before/after throughput
// comparison in the benches; never linked into the library. Do not
// maintain feature parity here.
#ifndef FASTPPR_BENCH_LEGACY_SALSA_WALK_STORE_H_
#define FASTPPR_BENCH_LEGACY_SALSA_WALK_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fastppr/graph/digraph.h"
#include "fastppr/graph/types.h"
#include "legacy_walk_store.h"
#include "fastppr/util/random.h"

namespace fastppr::legacy {

/// Walk-segment store for SALSA (Section 2.3 of the paper).
///
/// SALSA's random walk alternates forward (out-edge) and backward (in-edge)
/// steps; resets are drawn only before forward steps, so the mean segment
/// length is 2/eps. Each node stores 2R segments: R beginning with a
/// forward step (the node in *hub* role) and R beginning with a backward
/// step (the node in *authority* role).
///
/// A position's role is determined by parity: positions about to take a
/// forward step are hub-side, positions about to take a backward step are
/// authority-side. Authority scores are estimated from authority-side visit
/// frequencies (as eps -> 0 the global authority score converges to
/// indegree/m); hub scores from hub-side frequencies.
///
/// Incremental maintenance mirrors WalkStore, but an arriving edge (u, v)
/// can reroute walks at *both* endpoints: forward steps at u (switch
/// probability 1/outdeg(u)) and backward steps at v (switch probability
/// 1/indeg(v)) — this is one of the factors behind Theorem 6's 16x constant.
class SalsaWalkStore {
 public:
  static constexpr uint32_t kNoSlot = WalkStore::kNoSlot;

  enum class Direction : uint8_t { kForward, kBackward };

  enum class EndReason : uint8_t {
    kReset,        ///< reset fired before a forward step
    kDanglingFwd,  ///< tail has no out-edge (forward step impossible)
    kDanglingBwd,  ///< tail has no in-edge (backward step impossible)
  };

  struct PathEntry {
    NodeId node = kInvalidNode;
    uint32_t slot = kNoSlot;
  };

  struct Segment {
    std::vector<PathEntry> path;
    EndReason end = EndReason::kReset;
    bool forward_start = true;
  };

  struct VisitRef {
    uint64_t seg = 0;
    uint32_t pos = 0;
  };

  /// One scheduled segment repair. Collected for *both* endpoints of an
  /// updated edge before any mutation: a suffix re-simulated for one
  /// endpoint is already distributed for the new graph and must not be
  /// switched again by the other endpoint.
  struct PendingReroute {
    uint32_t pos = 0;
    NodeId forced = kInvalidNode;  ///< kInvalidNode = re-draw at apply time
    bool from_dangling = false;
    Direction dir = Direction::kForward;
  };

  SalsaWalkStore() = default;

  /// Generates R forward-start and R backward-start segments per node.
  void Init(const DiGraph& g, std::size_t walks_per_node, double epsilon,
            uint64_t seed);

  std::size_t walks_per_node() const { return walks_per_node_; }
  double epsilon() const { return epsilon_; }
  std::size_t num_nodes() const { return hub_visits_.size(); }
  std::size_t num_segments() const { return segments_.size(); }

  int64_t HubVisits(NodeId v) const { return hub_visits_[v]; }
  int64_t AuthorityVisits(NodeId v) const { return auth_visits_[v]; }

  /// Authority-side visit frequency (sums to 1 over all nodes).
  double NormalizedAuthority(NodeId v) const;
  /// Hub-side visit frequency (sums to 1 over all nodes).
  double NormalizedHub(NodeId v) const;

  /// Direction of the step taken at position `pos` of segment `seg`
  /// (terminal positions report the direction the step would have had).
  Direction StepDirection(uint64_t seg, uint32_t pos) const {
    const bool fwd_start = segments_[seg].forward_start;
    const bool even = (pos % 2 == 0);
    return (even == fwd_start) ? Direction::kForward : Direction::kBackward;
  }

  /// k < walks_per_node: forward-start segment; k in [R, 2R): backward.
  const Segment& GetSegment(NodeId u, std::size_t k) const {
    return segments_[SegId(u, k)];
  }

  /// Graph must already contain (u, v).
  WalkUpdateStats OnEdgeInserted(const DiGraph& g, NodeId u, NodeId v,
                                 Rng* rng);
  /// Graph must no longer contain (u, v).
  WalkUpdateStats OnEdgeRemoved(const DiGraph& g, NodeId u, NodeId v,
                                Rng* rng);

  /// Full invariant audit; test-only. Aborts on violation.
  void CheckConsistency(const DiGraph& g) const;

 private:
  uint64_t SegId(NodeId u, std::size_t k) const {
    return static_cast<uint64_t>(u) * 2 * walks_per_node_ + k;
  }

  std::vector<VisitRef>& StepList(Direction d, NodeId v) {
    return d == Direction::kForward ? step_fwd_[v] : step_bwd_[v];
  }
  std::vector<VisitRef>& DanglingList(EndReason r, NodeId v) {
    return r == EndReason::kDanglingFwd ? dangling_fwd_[v]
                                        : dangling_bwd_[v];
  }

  void RegisterStep(uint64_t seg, uint32_t pos);
  void UnregisterStep(uint64_t seg, uint32_t pos);
  void RegisterDangling(uint64_t seg, uint32_t pos);
  void UnregisterDangling(uint64_t seg, uint32_t pos);
  void AddVisitCounters(NodeId node, Direction side, int64_t delta);

  void TruncateAfter(uint64_t seg, uint32_t keep_pos);
  uint64_t ExtendFromTail(const DiGraph& g, uint64_t seg, NodeId forced,
                          Rng* rng);

  /// Earliest pending repair per segment id.
  using PendingMap = std::unordered_map<uint64_t, PendingReroute>;

  /// Collects the switch decisions for one endpoint of an insertion.
  void CollectInsertSide(Direction dir, NodeId pivot, NodeId forced_target,
                         std::size_t new_degree, Rng* rng,
                         WalkUpdateStats* stats, PendingMap* pending);
  /// Collects the broken-hop repairs for one endpoint of a removal.
  void CollectRemoveSide(const DiGraph& g, Direction dir, NodeId pivot,
                         NodeId old_target, Rng* rng, WalkUpdateStats* stats,
                         PendingMap* pending);

  std::size_t walks_per_node_ = 0;
  double epsilon_ = 0.2;
  Rng rng_{0};

  std::vector<Segment> segments_;
  std::vector<std::vector<VisitRef>> step_fwd_;
  std::vector<std::vector<VisitRef>> step_bwd_;
  std::vector<std::vector<VisitRef>> dangling_fwd_;
  std::vector<std::vector<VisitRef>> dangling_bwd_;
  std::vector<int64_t> hub_visits_;
  std::vector<int64_t> auth_visits_;
  int64_t total_hub_ = 0;
  int64_t total_auth_ = 0;
};

}  // namespace fastppr::legacy

#endif  // FASTPPR_BENCH_LEGACY_SALSA_WALK_STORE_H_
