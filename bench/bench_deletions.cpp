// Proposition 5: when the network has m edges, updating the walk segments
// after a random edge deletion costs nR/(m eps^2) expected work — the
// larger the graph, the cheaper a deletion. Measured at several graph
// sizes; the cheap O(W(u)) index scans are reported separately (the
// paper's cost model charges only walk re-simulation).

#include <cstdio>

#include "bench_common.h"
#include "fastppr/core/incremental_pagerank.h"
#include "fastppr/core/theory.h"
#include "fastppr/graph/generators.h"
#include "fastppr/util/histogram.h"
#include "fastppr/util/table_printer.h"

using namespace fastppr;
using namespace fastppr::bench;

int main() {
  Banner("Random edge deletion cost vs graph size",
         "Proposition 5 of Bahmani et al., VLDB 2010");

  const std::size_t n = 20000;
  const std::size_t R = 5;
  const double eps = 0.2;

  CsvWriter csv;
  const bool have_csv = OpenCsv(
      "deletions.csv",
      {"m", "mean_steps", "bound", "mean_segments", "mean_scanned"}, &csv);

  TablePrinter table({"m (edges)", "mean walk steps / deletion",
                      "Prop. 5 bound nR/(m eps^2)",
                      "mean segments rerouted", "mean index entries "
                      "scanned"});
  for (std::size_t m : {50000u, 100000u, 200000u, 400000u}) {
    Rng rng(100 + m);
    ChungLuOptions gen;
    gen.num_nodes = n;
    gen.num_edges = m;
    gen.alpha_in = 0.76;
    gen.alpha_out = 0.6;
    auto edges = ChungLuDirected(gen, &rng);
    DiGraph dg(n);
    for (const Edge& e : edges) {
      if (!dg.AddEdge(e.src, e.dst).ok()) return 1;
    }
    MonteCarloOptions mc;
    mc.walks_per_node = R;
    mc.epsilon = eps;
    mc.seed = m;
    IncrementalPageRank engine(dg, mc);

    // Delete (and re-insert) 2000 random live edges; re-insertion keeps m
    // constant so every deletion sees the same graph size.
    RunningStats steps, segments, scanned;
    Rng pick(200 + m);
    for (std::size_t i = 0; i < 2000; ++i) {
      const Edge victim = edges[pick.UniformIndex(edges.size())];
      if (!engine.graph().HasEdge(victim.src, victim.dst)) continue;
      if (!engine.RemoveEdge(victim.src, victim.dst).ok()) return 1;
      steps.Add(static_cast<double>(engine.last_event_stats().walk_steps));
      segments.Add(static_cast<double>(
          engine.last_event_stats().segments_updated));
      scanned.Add(static_cast<double>(
          engine.last_event_stats().entries_scanned));
      if (!engine.AddEdge(victim.src, victim.dst).ok()) return 1;
    }
    const double bound = Proposition5DeletionWork(n, R, eps, m);
    table.AddRow({std::to_string(m), TablePrinter::Fmt(steps.mean(), 3),
                  TablePrinter::Fmt(bound, 3),
                  TablePrinter::Fmt(segments.mean(), 3),
                  TablePrinter::Fmt(scanned.mean(), 1)});
    if (have_csv) {
      csv.AddRow({std::to_string(m), TablePrinter::Fmt(steps.mean(), 4),
                  TablePrinter::Fmt(bound, 4),
                  TablePrinter::Fmt(segments.mean(), 4),
                  TablePrinter::Fmt(scanned.mean(), 2)});
    }
  }
  table.Print();
  std::printf("\nshape check: deletion cost stays below nR/(m eps^2) at "
              "every size and decays as m grows (sparse graphs sit far "
              "under the bound because re-simulated suffixes hit dangling "
              "nodes early).\n");
  return 0;
}
