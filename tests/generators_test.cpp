#include "fastppr/graph/generators.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "fastppr/analysis/power_law.h"
#include "fastppr/graph/digraph.h"
#include "fastppr/util/random.h"

namespace fastppr {
namespace {

DiGraph Materialize(std::size_t n, const std::vector<Edge>& edges) {
  DiGraph g(n);
  for (const Edge& e : edges) EXPECT_TRUE(g.AddEdge(e.src, e.dst).ok());
  return g;
}

TEST(ErdosRenyiTest, CountAndNoSelfLoops) {
  Rng rng(1);
  auto edges = ErdosRenyi(100, 500, &rng);
  EXPECT_EQ(edges.size(), 500u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, 100u);
    EXPECT_LT(e.dst, 100u);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second) << "duplicate edge";
  }
}

TEST(PreferentialAttachmentTest, StreamShape) {
  Rng rng(2);
  PreferentialAttachmentOptions opts;
  opts.num_nodes = 500;
  opts.out_per_node = 5;
  opts.seed_clique = 4;
  auto edges = PreferentialAttachment(opts, &rng);
  // Clique edges + k per non-core node.
  EXPECT_EQ(edges.size(), 4u * 3u + (500u - 4u) * 5u);
  for (const Edge& e : edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, 500u);
    EXPECT_LT(e.dst, 500u);
  }
}

TEST(PreferentialAttachmentTest, RichGetRicher) {
  Rng rng(3);
  PreferentialAttachmentOptions opts;
  opts.num_nodes = 3000;
  opts.out_per_node = 5;
  opts.attractiveness = 1.0;
  auto edges = PreferentialAttachment(opts, &rng);
  DiGraph g = Materialize(3000, edges);
  // Early nodes should accumulate far more in-degree than late ones.
  std::size_t early = 0, late = 0;
  for (NodeId v = 0; v < 100; ++v) early += g.InDegree(v);
  for (NodeId v = 2900; v < 3000; ++v) late += g.InDegree(v);
  EXPECT_GT(early, 5 * late);
}

TEST(PreferentialAttachmentTest, InternalEdgesComeFromExistingNodes) {
  Rng rng(4);
  PreferentialAttachmentOptions opts;
  opts.num_nodes = 400;
  opts.out_per_node = 4;
  opts.p_internal = 0.5;
  auto edges = PreferentialAttachment(opts, &rng);
  EXPECT_EQ(edges.size(), opts.seed_clique * (opts.seed_clique - 1) +
                              (400 - opts.seed_clique) * 4);
}

TEST(ChungLuTest, ExponentRecovery) {
  Rng rng(5);
  ChungLuOptions opts;
  opts.num_nodes = 20000;
  opts.num_edges = 400000;
  opts.alpha_in = 0.7;
  auto edges = ChungLuDirected(opts, &rng);
  EXPECT_EQ(edges.size(), opts.num_edges);
  DiGraph g = Materialize(opts.num_nodes, edges);
  std::vector<double> indeg(opts.num_nodes);
  for (NodeId v = 0; v < opts.num_nodes; ++v) {
    indeg[v] = static_cast<double>(g.InDegree(v));
  }
  // Rank-plot exponent over the head of the distribution should recover
  // alpha_in (sampling noise flattens the deep tail).
  PowerLawFit fit = FitPowerLawUnsorted(indeg, 5, 500);
  EXPECT_NEAR(fit.alpha, 0.7, 0.12);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(ChungLuTest, NoSelfLoops) {
  Rng rng(6);
  ChungLuOptions opts;
  opts.num_nodes = 100;
  opts.num_edges = 2000;
  auto edges = ChungLuDirected(opts, &rng);
  for (const Edge& e : edges) EXPECT_NE(e.src, e.dst);
}

TEST(TriadicClosureTest, StreamShapeAndClosure) {
  Rng rng(7);
  TriadicStreamOptions opts;
  opts.num_nodes = 2000;
  opts.out_per_node = 8;
  opts.p_triadic = 0.6;
  opts.p_reciprocal = 0.0;
  auto edges = TriadicClosureStream(opts, &rng);
  EXPECT_EQ(edges.size(), opts.seed_clique * (opts.seed_clique - 1) +
                              (2000 - opts.seed_clique) * 8);
  for (const Edge& e : edges) EXPECT_NE(e.src, e.dst);
}

TEST(TriadicClosureTest, ReciprocityAddsBackEdges) {
  Rng rng(8);
  TriadicStreamOptions opts;
  opts.num_nodes = 2000;
  opts.out_per_node = 8;
  opts.p_reciprocal = 0.4;
  auto edges = TriadicClosureStream(opts, &rng);
  const std::size_t base = opts.seed_clique * (opts.seed_clique - 1) +
                           (2000 - opts.seed_clique) * 8;
  // ~40% extra reciprocal edges.
  EXPECT_GT(edges.size(), base + base / 4);
  EXPECT_LT(edges.size(), base + base / 2 + base / 10);
  // Reciprocity gives heavily-followed nodes out-edges too, so random
  // walks cannot be absorbed into the bootstrap clique.
  DiGraph g = Materialize(2000, edges);
  std::size_t clique_out = 0;
  for (NodeId v = 0; v < opts.seed_clique; ++v) {
    clique_out += g.OutDegree(v);
  }
  EXPECT_GT(clique_out, 10 * opts.seed_clique * (opts.seed_clique - 1));
}

TEST(TrapGraphTest, MatchesPaperConstruction) {
  const std::size_t N = 10;
  TrapGraph trap = MakeTrapGraph(N);
  EXPECT_EQ(trap.num_nodes, 3 * N + 1);
  DiGraph g(trap.num_nodes);
  for (const Edge& e : trap.adversarial_stream) {
    ASSERT_TRUE(g.AddEdge(e.src, e.dst).ok());
  }
  const NodeId u = trap.u;
  const NodeId v1 = trap.v1;
  // v_j -> u for all j; u -> x_j; x_j -> u; v_1 <-> y_j; cycle.
  EXPECT_EQ(g.InDegree(u), 2 * N);            // from v_j and x_j
  EXPECT_EQ(g.OutDegree(u), N + 1);           // x_j plus the trap edge
  EXPECT_TRUE(g.HasEdge(u, v1));
  EXPECT_EQ(g.OutDegree(v1), N + 2);          // cycle + u + y_j
  EXPECT_EQ(g.InDegree(v1), N + 2);           // y_j + cycle + u
  // The trap edge is u -> v1 and arrives before any other u-sourced edge.
  EXPECT_EQ(trap.adversarial_stream[trap.trap_edge_index],
            (Edge{u, v1}));
  for (std::size_t i = 0; i < trap.trap_edge_index; ++i) {
    EXPECT_NE(trap.adversarial_stream[i].src, u);
  }
}

TEST(DeterministicGraphsTest, CycleStarComplete) {
  auto cyc = DirectedCycle(5);
  EXPECT_EQ(cyc.size(), 5u);
  EXPECT_EQ(cyc[4], (Edge{4, 0}));

  auto star = StarInto(4);
  EXPECT_EQ(star.size(), 4u);
  for (const Edge& e : star) EXPECT_EQ(e.dst, 0u);

  auto comp = CompleteDigraph(4);
  EXPECT_EQ(comp.size(), 12u);
}

}  // namespace
}  // namespace fastppr
