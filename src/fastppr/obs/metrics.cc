#include "fastppr/obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace fastppr::obs {

namespace {

void AppendDouble(std::ostringstream* os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *os << buf;
}

void AppendCounterValue(std::ostringstream* os, const Counter& c) {
  if (c.stripes() == 1) {
    *os << c.Total();
    return;
  }
  *os << "{\"total\": " << c.Total() << ", \"per_stripe\": [";
  for (std::size_t s = 0; s < c.stripes(); ++s) {
    if (s != 0) *os << ", ";
    *os << c.Value(s);
  }
  *os << "]}";
}

}  // namespace

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const NamedCounter& nc : counters_) {
    if (nc.gauge) continue;
    os << (first ? "\n" : ",\n") << "    \"" << nc.name << "\": ";
    AppendCounterValue(&os, *nc.counter);
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const NamedCounter& nc : counters_) {
    if (!nc.gauge) continue;
    os << (first ? "\n" : ",\n") << "    \"" << nc.name << "\": ";
    AppendCounterValue(&os, *nc.counter);
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const NamedHistogram& nh : histograms_) {
    const LatencyHistogram::Summary s = nh.hist.Summarize();
    os << (first ? "\n" : ",\n") << "    \"" << nh.name << "\": {"
       << "\"count\": " << s.count << ", \"overflow\": " << s.overflow
       << ", \"mean_us\": ";
    AppendDouble(&os, s.mean_ns / 1e3);
    os << ", \"min_us\": ";
    AppendDouble(&os, static_cast<double>(s.min_ns) / 1e3);
    os << ", \"max_us\": ";
    AppendDouble(&os, static_cast<double>(s.max_ns) / 1e3);
    os << ", \"p50_us\": ";
    AppendDouble(&os, static_cast<double>(s.p50_ns) / 1e3);
    os << ", \"p90_us\": ";
    AppendDouble(&os, static_cast<double>(s.p90_ns) / 1e3);
    os << ", \"p99_us\": ";
    AppendDouble(&os, static_cast<double>(s.p99_ns) / 1e3);
    os << ", \"p999_us\": ";
    AppendDouble(&os, static_cast<double>(s.p999_ns) / 1e3);
    os << "}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

}  // namespace fastppr::obs
