#include "fastppr/core/ppr_walker.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "fastppr/core/theory.h"
#include "fastppr/util/check.h"

namespace fastppr {

PersonalizedPageRankWalker::PersonalizedPageRankWalker(
    const WalkStore* store, SocialStore* social, WalkerOptions options)
    : store_(store), social_(social), options_(options) {
  FASTPPR_CHECK(store_ != nullptr && social_ != nullptr);
}

Status PersonalizedPageRankWalker::Walk(NodeId seed, uint64_t length,
                                        uint64_t rng_seed,
                                        PersonalizedWalkResult* out) const {
  if (seed >= social_->num_nodes()) {
    return Status::InvalidArgument("seed node out of range");
  }
  *out = PersonalizedWalkResult{};
  Rng rng(rng_seed);
  const std::size_t R = store_->walks_per_node();
  const double eps = store_->epsilon();
  const DiGraph& g = social_->graph();

  // Per-node query state: how many stored segments we have consumed.
  // Presence in the map == the node has been fetched.
  std::unordered_map<NodeId, uint32_t> used;

  auto visit = [out](NodeId v) {
    ++out->visit_counts[v];
    ++out->length;
  };
  auto charge_fetch = [this, out]() -> bool {
    ++out->fetches;
    return options_.max_fetches == 0 || out->fetches <= options_.max_fetches;
  };

  NodeId cur = seed;
  visit(seed);
  while (out->length < length) {
    auto it = used.find(cur);
    if (it == used.end()) {
      // First arrival: fetch the node (its segments + adjacency).
      if (!charge_fetch()) {
        return Status::ResourceExhausted("fetch budget exhausted");
      }
      it = used.emplace(cur, 0).first;
    }
    if (it->second < R) {
      // Consume one stored segment: append its tail, then the session is
      // over and the walk resets to the seed.
      const WalkStore::SegmentView seg = store_->GetSegment(cur, it->second);
      ++it->second;
      ++out->segments_used;
      for (std::size_t p = 1; p < seg.size() && out->length < length; ++p) {
        visit(seg.node(p));
      }
      if (out->length < length) {
        visit(seed);
        ++out->resets;
        cur = seed;
      }
      continue;
    }
    // Segments exhausted at cur: manual simulation.
    if (rng.Bernoulli(eps)) {
      visit(seed);
      ++out->resets;
      cur = seed;
      continue;
    }
    if (options_.fetch_mode == FetchMode::kSegmentsAndOneEdge) {
      // Each manual step costs one fetch returning one sampled edge.
      if (!charge_fetch()) {
        return Status::ResourceExhausted("fetch budget exhausted");
      }
    }
    if (g.OutDegree(cur) == 0) {
      // Dangling: the session ends exactly like a reset.
      visit(seed);
      ++out->resets;
      cur = seed;
      continue;
    }
    cur = g.RandomOutNeighbor(cur, &rng);
    ++out->manual_steps;
    visit(cur);
  }
  return Status::OK();
}

std::vector<ScoredNode> RankVisits(
    const std::unordered_map<NodeId, int64_t>& counts, std::size_t k,
    uint64_t walk_length, const std::vector<NodeId>& exclude) {
  std::unordered_set<NodeId> skip(exclude.begin(), exclude.end());
  std::vector<ScoredNode> ranked;
  ranked.reserve(counts.size());
  for (const auto& [node, visits] : counts) {
    if (skip.count(node)) continue;
    ScoredNode s;
    s.node = node;
    s.visits = visits;
    s.score = walk_length > 0 ? static_cast<double>(visits) /
                                    static_cast<double>(walk_length)
                              : 0.0;
    ranked.push_back(s);
  }
  const std::size_t take = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + take, ranked.end(),
                    [](const ScoredNode& a, const ScoredNode& b) {
                      if (a.visits != b.visits) return a.visits > b.visits;
                      return a.node < b.node;
                    });
  ranked.resize(take);
  return ranked;
}

Status PersonalizedPageRankWalker::TopKWithTheoryLength(
    NodeId seed, std::size_t k, double alpha, double c,
    bool exclude_friends, uint64_t rng_seed,
    std::vector<ScoredNode>* ranked,
    PersonalizedWalkResult* walk_stats) const {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const double s =
      WalkLengthForTopK(k, social_->num_nodes(), alpha, c);
  const uint64_t length =
      static_cast<uint64_t>(std::llround(std::max(1.0, s)));
  return TopK(seed, k, length, exclude_friends, rng_seed, ranked,
              walk_stats);
}

Status PersonalizedPageRankWalker::TopK(
    NodeId seed, std::size_t k, uint64_t length, bool exclude_friends,
    uint64_t rng_seed, std::vector<ScoredNode>* ranked,
    PersonalizedWalkResult* walk_stats) const {
  PersonalizedWalkResult walk;
  FASTPPR_RETURN_IF_ERROR(Walk(seed, length, rng_seed, &walk));
  std::vector<NodeId> exclude{seed};
  if (exclude_friends) {
    for (NodeId v : social_->graph().OutNeighbors(seed)) {
      exclude.push_back(v);
    }
  }
  *ranked = RankVisits(walk.visit_counts, k, walk.length, exclude);
  if (walk_stats != nullptr) *walk_stats = std::move(walk);
  return Status::OK();
}

}  // namespace fastppr
