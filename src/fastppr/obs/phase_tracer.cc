#include "fastppr/obs/phase_tracer.h"

#include <algorithm>
#include <fstream>

#include "fastppr/util/check.h"

namespace fastppr::obs {

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kIngest: return "ingest";
    case Phase::kRepair: return "repair";
    case Phase::kPublish: return "publish";
    case Phase::kFsync: return "fsync";
  }
  return "unknown";
}

void PhaseTracer::Init(std::size_t tracks,
                       std::size_t max_spans_per_track) {
  FASTPPR_CHECK(max_spans_per_track >= 1);
  max_spans_per_track_ = max_spans_per_track;
  tracks_.clear();
  tracks_.reserve(tracks);
  for (std::size_t t = 0; t < tracks; ++t) {
    tracks_.push_back(std::make_unique<Track>());
  }
}

void PhaseTracer::Record(std::size_t track, Phase phase, uint64_t epoch,
                         uint64_t start_ns, uint64_t end_ns) {
  FASTPPR_CHECK(track < tracks_.size());
  FASTPPR_CHECK(end_ns >= start_ns);
  Track& t = *tracks_[track];
  std::lock_guard<std::mutex> lock(t.mu);
  const std::size_t p = static_cast<std::size_t>(phase);
  t.busy_ns[p] += end_ns - start_ns;
  ++t.span_count[p];
  t.min_start_ns = std::min(t.min_start_ns, start_ns);
  t.max_end_ns = std::max(t.max_end_ns, end_ns);
  if (t.spans.size() >= max_spans_per_track_) {
    ++t.dropped;
    return;
  }
  t.spans.push_back(Span{start_ns, end_ns, epoch, phase});
}

std::vector<Span> PhaseTracer::SpansForTrack(std::size_t track) const {
  FASTPPR_CHECK(track < tracks_.size());
  const Track& t = *tracks_[track];
  std::lock_guard<std::mutex> lock(t.mu);
  return t.spans;
}

uint64_t PhaseTracer::dropped(std::size_t track) const {
  FASTPPR_CHECK(track < tracks_.size());
  const Track& t = *tracks_[track];
  std::lock_guard<std::mutex> lock(t.mu);
  return t.dropped;
}

PhaseTracer::Totals PhaseTracer::ComputeTotals() const {
  Totals out;
  uint64_t min_start = ~uint64_t{0};
  for (const auto& tp : tracks_) {
    const Track& t = *tp;
    std::lock_guard<std::mutex> lock(t.mu);
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      out.phase[p].busy_ns += t.busy_ns[p];
      out.phase[p].span_count += t.span_count[p];
    }
    min_start = std::min(min_start, t.min_start_ns);
    out.max_end_ns = std::max(out.max_end_ns, t.max_end_ns);
  }
  out.min_start_ns = min_start == ~uint64_t{0} ? 0 : min_start;
  return out;
}

Status PhaseTracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open trace file " + path);
  }
  // Timestamps are microseconds relative to the earliest span, so the
  // viewer's timeline starts at ~0 instead of hours of steady_clock.
  const uint64_t base_ns = ComputeTotals().min_start_ns;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (std::size_t track = 0; track < tracks_.size(); ++track) {
    for (const Span& s : SpansForTrack(track)) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "{\"name\": \"" << PhaseName(s.phase)
          << "\", \"cat\": \"phase\", \"ph\": \"X\", \"ts\": "
          << static_cast<double>(s.start_ns - base_ns) / 1e3
          << ", \"dur\": "
          << static_cast<double>(s.end_ns - s.start_ns) / 1e3
          << ", \"pid\": 0, \"tid\": " << track
          << ", \"args\": {\"epoch\": " << s.epoch << "}}";
    }
  }
  out << "\n]}\n";
  out.flush();
  if (!out.good()) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

void PhaseTracer::Clear() {
  for (auto& tp : tracks_) {
    Track& t = *tp;
    std::lock_guard<std::mutex> lock(t.mu);
    t.spans.clear();
    t.dropped = 0;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      t.busy_ns[p] = 0;
      t.span_count[p] = 0;
    }
    t.min_start_ns = ~uint64_t{0};
    t.max_end_ns = 0;
  }
}

}  // namespace fastppr::obs
