file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ppr_powerlaw.dir/bench/bench_fig3_ppr_powerlaw.cpp.o"
  "CMakeFiles/bench_fig3_ppr_powerlaw.dir/bench/bench_fig3_ppr_powerlaw.cpp.o.d"
  "bench_fig3_ppr_powerlaw"
  "bench_fig3_ppr_powerlaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ppr_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
