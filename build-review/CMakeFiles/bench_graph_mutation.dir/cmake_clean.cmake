file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_mutation.dir/bench/bench_graph_mutation.cpp.o"
  "CMakeFiles/bench_graph_mutation.dir/bench/bench_graph_mutation.cpp.o.d"
  "bench_graph_mutation"
  "bench_graph_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
