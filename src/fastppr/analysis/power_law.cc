#include "fastppr/analysis/power_law.h"

#include <algorithm>
#include <cmath>

#include "fastppr/util/check.h"

namespace fastppr {

PowerLawFit FitPowerLaw(const std::vector<double>& descending_values,
                        std::size_t rank_lo, std::size_t rank_hi) {
  PowerLawFit fit;
  if (descending_values.empty()) return fit;
  rank_lo = std::max<std::size_t>(rank_lo, 1);
  if (rank_hi == 0 || rank_hi > descending_values.size()) {
    rank_hi = descending_values.size();
  }
  if (rank_hi < rank_lo) return fit;

  // Ordinary least squares on (log rank, log value), skipping zeros.
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  std::size_t count = 0;
  for (std::size_t j = rank_lo; j <= rank_hi; ++j) {
    const double v = descending_values[j - 1];
    if (v <= 0.0) continue;
    const double x = std::log(static_cast<double>(j));
    const double y = std::log(v);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    ++count;
  }
  fit.points = count;
  if (count < 2) return fit;
  const double nn = static_cast<double>(count);
  const double denom = nn * sxx - sx * sx;
  if (denom == 0.0) return fit;
  const double slope = (nn * sxy - sx * sy) / denom;
  fit.alpha = -slope;
  fit.intercept = (sy - slope * sx) / nn;
  const double ss_tot = syy - sy * sy / nn;
  const double ss_res =
      syy - 2.0 * (slope * sxy + fit.intercept * sy) +
      slope * slope * sxx + 2.0 * slope * fit.intercept * sx +
      nn * fit.intercept * fit.intercept;
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

PowerLawFit FitPowerLawUnsorted(const std::vector<double>& values,
                                std::size_t rank_lo, std::size_t rank_hi) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  return FitPowerLaw(sorted, rank_lo, rank_hi);
}

std::vector<std::pair<std::size_t, double>> LogSpacedRankSeries(
    const std::vector<double>& descending_values,
    std::size_t points_per_decade) {
  std::vector<std::pair<std::size_t, double>> series;
  if (descending_values.empty()) return series;
  const double step = std::pow(10.0, 1.0 / static_cast<double>(
                                          std::max<std::size_t>(
                                              points_per_decade, 1)));
  double r = 1.0;
  std::size_t last = 0;
  while (true) {
    std::size_t rank = static_cast<std::size_t>(std::llround(r));
    if (rank > descending_values.size()) break;
    if (rank != last) {
      series.emplace_back(rank, descending_values[rank - 1]);
      last = rank;
    }
    r *= step;
    if (rank == descending_values.size()) break;
  }
  return series;
}

}  // namespace fastppr
