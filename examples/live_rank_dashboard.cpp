// Live-rank dashboard: simulates the real-time scenario of Section 2.2 —
// edges stream in (with occasional unfollows), and the PageRank estimates
// are always fresh. At checkpoints the dashboard prints the current top-10
// and the marginal update cost, illustrating the nR/(t*eps) decay of
// Theorem 4.
//
//   build/examples/live_rank_dashboard

#include <cstdio>

#include "fastppr/core/incremental_pagerank.h"
#include "fastppr/core/theory.h"
#include "fastppr/graph/edge_stream.h"
#include "fastppr/graph/generators.h"
#include "fastppr/util/histogram.h"
#include "fastppr/util/timer.h"

using namespace fastppr;

int main() {
  const std::size_t n = 20000;
  const std::size_t R = 5;
  const double eps = 0.2;

  Rng rng(11);
  PreferentialAttachmentOptions gen;
  gen.num_nodes = n;
  gen.out_per_node = 10;
  gen.p_internal = 0.3;
  auto edges = PreferentialAttachment(gen, &rng);
  ChurnStream stream(edges, /*p_delete=*/0.02, /*warmup=*/5000, &rng);

  MonteCarloOptions options;
  options.walks_per_node = R;
  options.epsilon = eps;
  IncrementalPageRank engine(n, options);

  WallTimer timer;
  RunningStats window_updates;
  std::size_t t = 0;
  std::size_t next_checkpoint = 1000;
  while (auto ev = stream.Next()) {
    if (!engine.ApplyEvent(*ev).ok()) return 1;
    ++t;
    window_updates.Add(
        static_cast<double>(engine.last_event_stats().segments_updated));
    if (t == next_checkpoint) {
      std::printf("\n--- t = %zu events (m = %zu edges, %.1f ms elapsed) "
                  "---\n",
                  t, engine.num_edges(), timer.ElapsedMillis());
      std::printf("mean segment updates/event in window: %.3f "
                  "(Theorem 4 bound at t: %.3f)\n",
                  window_updates.mean(),
                  Theorem4SegmentsPerArrival(n, R, eps, t));
      std::printf("top-10 right now:");
      for (NodeId v : engine.TopK(10)) std::printf(" %u", v);
      std::printf("\n");
      window_updates = RunningStats();
      next_checkpoint *= 4;
    }
  }
  std::printf("\nfinal: %zu events, lifetime walk steps %llu "
              "(naive MC recompute would have cost ~%.2e)\n",
              t,
              static_cast<unsigned long long>(
                  engine.lifetime_stats().walk_steps),
              NaiveMonteCarloTotalWork(n, R, eps, t));
  return 0;
}
