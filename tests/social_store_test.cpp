#include "fastppr/store/social_store.h"

#include <gtest/gtest.h>

namespace fastppr {
namespace {

TEST(SocialStoreTest, CountsReadsAndWrites) {
  SocialStore store(10);
  EXPECT_TRUE(store.AddEdge(0, 1).ok());
  EXPECT_TRUE(store.AddEdge(1, 2).ok());
  EXPECT_EQ(store.writes(), 2u);
  EXPECT_EQ(store.reads(), 0u);

  auto outs = store.GetOutNeighbors(0);
  EXPECT_EQ(outs.size(), 1u);
  store.GetInNeighbors(2);
  store.GetOutDegree(1);
  store.GetInDegree(1);
  EXPECT_EQ(store.reads(), 4u);
}

TEST(SocialStoreTest, FailedWriteNotCounted) {
  SocialStore store(2);
  EXPECT_TRUE(store.AddEdge(0, 9).IsInvalidArgument());
  EXPECT_TRUE(store.RemoveEdge(0, 1).IsNotFound());
  EXPECT_EQ(store.writes(), 0u);
}

TEST(SocialStoreTest, ShardAccounting) {
  SocialStore::Options opts;
  opts.num_shards = 4;
  SocialStore store(16, opts);
  ASSERT_TRUE(store.AddEdge(0, 1).ok());
  ASSERT_TRUE(store.AddEdge(4, 1).ok());
  store.GetOutNeighbors(0);  // shard 0
  store.GetOutNeighbors(4);  // shard 0
  store.GetOutNeighbors(1);  // shard 1
  EXPECT_EQ(store.shard_of(0), 0u);
  EXPECT_EQ(store.shard_of(5), 1u);
  EXPECT_EQ(store.shard_reads(0), 2u);
  EXPECT_EQ(store.shard_reads(1), 1u);
  EXPECT_EQ(store.shard_reads(2), 0u);
}

TEST(SocialStoreTest, SimulatedLatencyModel) {
  SocialStore::Options opts;
  opts.simulated_call_micros = 100.0;
  SocialStore store(4, opts);
  ASSERT_TRUE(store.AddEdge(0, 1).ok());
  store.GetOutNeighbors(0);
  EXPECT_DOUBLE_EQ(store.simulated_micros(), 200.0);  // 1 write + 1 read
}

TEST(SocialStoreTest, ResetStats) {
  SocialStore store(4);
  ASSERT_TRUE(store.AddEdge(0, 1).ok());
  store.GetOutNeighbors(0);
  store.ResetStats();
  EXPECT_EQ(store.reads(), 0u);
  EXPECT_EQ(store.writes(), 0u);
  EXPECT_EQ(store.shard_reads(0), 0u);
  // Graph contents unaffected.
  EXPECT_EQ(store.num_edges(), 1u);
}

TEST(SocialStoreTest, UncountedLocalAccess) {
  SocialStore store(4);
  ASSERT_TRUE(store.AddEdge(0, 1).ok());
  EXPECT_EQ(store.graph().OutDegree(0), 1u);
  EXPECT_EQ(store.reads(), 0u);
}

}  // namespace
}  // namespace fastppr
