// Who-to-follow: the paper's motivating application (and the basis of
// Twitter's WTF system). Personalized SALSA over incrementally-maintained
// walk segments recommends accounts similar users follow, compared side by
// side with personalized PageRank, HITS and COSINE for a few users.
//
//   build/examples/who_to_follow

#include <cstdio>
#include <vector>

#include "fastppr/baseline/cosine.h"
#include "fastppr/baseline/hits.h"
#include "fastppr/core/incremental_salsa.h"
#include "fastppr/core/salsa_walker.h"
#include "fastppr/graph/csr_graph.h"
#include "fastppr/graph/generators.h"
#include "fastppr/util/table_printer.h"

using namespace fastppr;

int main() {
  // A social graph with triadic closure, so "friends of friends" are the
  // right recommendations.
  Rng rng(7);
  TriadicStreamOptions gen;
  gen.num_nodes = 5000;
  gen.out_per_node = 12;
  gen.p_triadic = 0.6;
  std::vector<Edge> follows = TriadicClosureStream(gen, &rng);

  MonteCarloOptions options;
  options.walks_per_node = 10;
  options.epsilon = 0.2;
  IncrementalSalsa engine(gen.num_nodes, options);
  for (const Edge& e : follows) {
    if (!engine.AddEdge(e.src, e.dst).ok()) return 1;
  }

  PersonalizedSalsaWalker walker(&engine.walk_store(),
                                 &engine.social_store());
  CsrGraph snapshot = CsrGraph::FromDiGraph(engine.graph());

  for (NodeId user : {NodeId{2500}, NodeId{4000}}) {
    std::printf("\n=== recommendations for user %u (follows %zu) ===\n",
                user, engine.graph().OutDegree(user));
    std::vector<ScoredNode> recs;
    SalsaWalkResult walk;
    Status s = walker.TopKAuthorities(user, 5, 30000,
                                      /*exclude_friends=*/true,
                                      /*rng_seed=*/user, &recs, &walk);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }

    // Baselines for comparison (computed offline on a snapshot).
    auto hits = PersonalizedHits(snapshot, user, HitsOptions{});
    auto cosine = CosineSimilarityScores(snapshot, user);

    TablePrinter table({"rank", "SALSA (walk)", "auth score", "HITS rank?",
                        "COSINE rank?"});
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const NodeId v = recs[i].node;
      // Where do the baselines put this node?
      auto rank_of = [v](const std::vector<double>& scores) {
        std::size_t better = 0;
        for (double x : scores) {
          if (x > scores[v]) ++better;
        }
        return better + 1;
      };
      table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(i + 1)),
                    "user " + std::to_string(v),
                    TablePrinter::Fmt(recs[i].score, 5),
                    TablePrinter::Fmt(
                        static_cast<uint64_t>(rank_of(hits.authority))),
                    TablePrinter::Fmt(
                        static_cast<uint64_t>(rank_of(cosine.authority)))});
    }
    table.Print();
    std::printf("walk: %llu steps, %llu fetches, %llu stored segments "
                "consumed\n",
                static_cast<unsigned long long>(walk.length),
                static_cast<unsigned long long>(walk.fetches),
                static_cast<unsigned long long>(walk.segments_used));
  }
  return 0;
}
