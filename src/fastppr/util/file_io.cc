#include "fastppr/util/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

namespace fastppr {

namespace {

/// Crash budget: bytes that may still be appended process-wide before
/// the injected _exit. Negative = disarmed.
std::atomic<int64_t> g_crash_budget{-1};

Status ErrnoStatus(const std::string& op, const std::string& path) {
  const std::string msg = op + " " + path + ": " + std::strerror(errno);
  if (errno == ENOENT) return Status::NotFound(msg);
  return Status::IOError(msg);
}

/// Writes exactly n bytes to fd, looping over short writes and EINTR.
Status WriteAll(int fd, const char* p, std::size_t n,
                const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    if (w == 0) return Status::IOError("short write to " + path);
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::OK();
}

}  // namespace

void SetCrashAfterBytesForTesting(int64_t bytes) {
  g_crash_budget.store(bytes, std::memory_order_relaxed);
}

WritableFile::~WritableFile() {
  if (fd_ >= 0) ::close(fd_);  // error path: caller already gave up
}

WritableFile::WritableFile(WritableFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)),
      bytes_written_(other.bytes_written_) {
  other.fd_ = -1;
}

WritableFile& WritableFile::operator=(WritableFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    bytes_written_ = other.bytes_written_;
    other.fd_ = -1;
  }
  return *this;
}

Status WritableFile::Open(const std::string& path, WritableFile* out) {
  Status ignored = out->Close();
  (void)ignored;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  out->fd_ = fd;
  out->path_ = path;
  out->bytes_written_ = 0;
  return Status::OK();
}

Status WritableFile::Append(const void* data, std::size_t n) {
  if (fd_ < 0) return Status::IOError("append to closed file " + path_);
  const char* p = static_cast<const char*>(data);

  const int64_t budget = g_crash_budget.load(std::memory_order_relaxed);
  if (budget >= 0) {
    if (static_cast<uint64_t>(budget) < n) {
      // The injected kill lands inside this write: persist the prefix
      // the kernel would have accepted, then die without unwinding.
      const std::size_t prefix = static_cast<std::size_t>(budget);
      if (prefix > 0) (void)WriteAll(fd_, p, prefix, path_);
      ::_exit(kCrashInjectionExitCode);
    }
    g_crash_budget.store(budget - static_cast<int64_t>(n),
                         std::memory_order_relaxed);
  }

  FASTPPR_RETURN_IF_ERROR(WriteAll(fd_, p, n, path_));
  bytes_written_ += n;
  return Status::OK();
}

Status WritableFile::Sync() {
  if (fd_ < 0) return Status::IOError("sync of closed file " + path_);
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

Status WritableFile::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return ErrnoStatus("close", path_);
  return Status::OK();
}

Status AtomicReplace(const std::string& tmp_path,
                     const std::string& final_path) {
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("rename", tmp_path + " -> " + final_path);
  }
  // Make the rename itself durable: fsync the parent directory.
  const std::filesystem::path parent =
      std::filesystem::path(final_path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return ErrnoStatus("open dir", dir);
  const int rc = ::fsync(dfd);
  const int saved_errno = errno;
  ::close(dfd);
  if (rc != 0) {
    errno = saved_errno;
    return ErrnoStatus("fsync dir", dir);
  }
  return Status::OK();
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);
  out->clear();
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status s = ErrnoStatus("read", path);
      ::close(fd);
      return s;
    }
    if (r == 0) break;
    out->insert(out->end(), buf, buf + r);
  }
  ::close(fd);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink", path);
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create " + dir + ": " + ec.message());
  return Status::OK();
}

}  // namespace fastppr
