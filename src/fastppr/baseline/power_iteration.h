#ifndef FASTPPR_BASELINE_POWER_ITERATION_H_
#define FASTPPR_BASELINE_POWER_ITERATION_H_

#include <cstddef>
#include <vector>

#include "fastppr/graph/csr_graph.h"
#include "fastppr/graph/types.h"

namespace fastppr {

/// The linear-algebraic baseline of the paper's comparisons (equation (1)):
/// repeated application of the PageRank update until the L1 change falls
/// below `tolerance`. Each iteration costs O(m); recomputing after every
/// arrival is the Omega(m^2 / ln(1/(1-eps))) straw man of Section 1.3.
struct PowerIterationOptions {
  double epsilon = 0.2;       ///< reset probability
  double tolerance = 1e-12;   ///< L1 convergence threshold
  std::size_t max_iters = 1000;
};

struct PowerIterationResult {
  std::vector<double> scores;  ///< sums to 1
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final L1 change
};

/// Global PageRank. Dangling mass is routed to the reset distribution
/// (uniform), matching the Monte Carlo walk-segment semantics where a
/// dangling node ends the session exactly like a reset.
PowerIterationResult PageRankPowerIteration(const CsrGraph& g,
                                            const PowerIterationOptions& opts);

/// Personalized PageRank: all resets (and dangling exits) jump to `seed`.
PowerIterationResult PersonalizedPageRank(const CsrGraph& g, NodeId seed,
                                          const PowerIterationOptions& opts);

/// Shared implementation: arbitrary reset distribution `reset` (must sum
/// to 1 over g.num_nodes() entries).
PowerIterationResult PageRankWithResetVector(
    const CsrGraph& g, const std::vector<double>& reset,
    const PowerIterationOptions& opts);

/// Indices of the k largest scores, descending (ties by node id).
/// `exclude` entries are skipped (e.g. the seed and its direct friends).
std::vector<NodeId> TopKNodes(const std::vector<double>& scores,
                              std::size_t k,
                              const std::vector<NodeId>& exclude = {});

}  // namespace fastppr

#endif  // FASTPPR_BASELINE_POWER_ITERATION_H_
