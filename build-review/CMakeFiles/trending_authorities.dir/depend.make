# Empty dependencies file for trending_authorities.
# This may be replaced when dependencies are built.
