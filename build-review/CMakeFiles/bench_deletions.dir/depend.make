# Empty dependencies file for bench_deletions.
# This may be replaced when dependencies are built.
