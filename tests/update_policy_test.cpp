// Tests for the kRedoFromSource repair policy (the paper's "even more
// simply starting at the corresponding source node" option).

#include <cmath>

#include <gtest/gtest.h>

#include "fastppr/baseline/power_iteration.h"
#include "fastppr/core/incremental_pagerank.h"
#include "fastppr/core/ppr_walker.h"
#include "fastppr/graph/csr_graph.h"
#include "fastppr/graph/generators.h"

namespace fastppr {
namespace {

MonteCarloOptions Opts(std::size_t R, double eps, uint64_t seed,
                       UpdatePolicy policy) {
  MonteCarloOptions o;
  o.walks_per_node = R;
  o.epsilon = eps;
  o.seed = seed;
  o.update_policy = policy;
  return o;
}

TEST(UpdatePolicyTest, RedoFromSourceKeepsInvariants) {
  Rng rng(1);
  auto edges = ErdosRenyi(60, 500, &rng);
  IncrementalPageRank engine(
      60, Opts(10, 0.2, 2, UpdatePolicy::kRedoFromSource));
  for (const Edge& e : edges) ASSERT_TRUE(engine.AddEdge(e.src, e.dst).ok());
  engine.CheckConsistency();
  EXPECT_EQ(engine.walk_store().update_policy(),
            UpdatePolicy::kRedoFromSource);
}

TEST(UpdatePolicyTest, RedoFromSourceAccurateForFewUpdates) {
  // Bootstrapped from a full graph (exact initialization), a handful of
  // redo-from-source repairs keeps the estimates accurate: the per-event
  // bias is small.
  Rng rng(3);
  auto edges = ErdosRenyi(100, 900, &rng);
  DiGraph g(100);
  for (const Edge& e : edges) ASSERT_TRUE(g.AddEdge(e.src, e.dst).ok());
  IncrementalPageRank engine(
      g, Opts(50, 0.2, 4, UpdatePolicy::kRedoFromSource));
  Rng extra(40);
  for (int i = 0; i < 50; ++i) {
    NodeId u = static_cast<NodeId>(extra.UniformIndex(100));
    NodeId v = static_cast<NodeId>(extra.UniformIndex(100));
    if (u == v) v = (v + 1) % 100;
    ASSERT_TRUE(engine.AddEdge(u, v).ok());
  }
  engine.CheckConsistency();

  PowerIterationOptions opts;
  opts.epsilon = 0.2;
  auto exact =
      PageRankPowerIteration(CsrGraph::FromDiGraph(engine.graph()), opts);
  double l1 = 0.0;
  for (NodeId v = 0; v < 100; ++v) {
    l1 += std::abs(engine.NormalizedEstimate(v) - exact.scores[v]);
  }
  EXPECT_LT(l1, 0.15);
}

TEST(UpdatePolicyTest, RedoDriftsTowardShortSegmentsOnLongStreams) {
  // The documented reproduction finding: redo-from-source re-rolls reset
  // draws, and short outcomes are nearly absorbing, so the stored
  // ensemble drifts toward short walks over long streams. The exact
  // coupling keeps the expected total visit count nR/eps.
  Rng rng(3);
  auto edges = ErdosRenyi(100, 1500, &rng);
  IncrementalPageRank reroute(
      100, Opts(10, 0.2, 4, UpdatePolicy::kRerouteFromVisit));
  IncrementalPageRank redo(
      100, Opts(10, 0.2, 4, UpdatePolicy::kRedoFromSource));
  for (const Edge& e : edges) {
    ASSERT_TRUE(reroute.AddEdge(e.src, e.dst).ok());
    ASSERT_TRUE(redo.AddEdge(e.src, e.dst).ok());
  }
  const double expected_visits = 100.0 * 10.0 / 0.2;
  EXPECT_GT(static_cast<double>(reroute.walk_store().TotalVisits()),
            0.85 * expected_visits);
  EXPECT_LT(static_cast<double>(redo.walk_store().TotalVisits()),
            0.6 * expected_visits);
  redo.CheckConsistency();  // the index stays coherent even while biased
}

TEST(UpdatePolicyTest, RedoFromSourceHandlesDeletions) {
  // Bootstrap exactly, then delete: the invariants hold and the bias from
  // a bounded number of redo repairs stays moderate.
  Rng rng(5);
  auto edges = ErdosRenyi(50, 400, &rng);
  DiGraph g(50);
  for (const Edge& e : edges) ASSERT_TRUE(g.AddEdge(e.src, e.dst).ok());
  IncrementalPageRank engine(
      g, Opts(10, 0.2, 6, UpdatePolicy::kRedoFromSource));
  for (std::size_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(engine.RemoveEdge(edges[i].src, edges[i].dst).ok());
  }
  engine.CheckConsistency();

  PowerIterationOptions opts;
  opts.epsilon = 0.2;
  auto exact =
      PageRankPowerIteration(CsrGraph::FromDiGraph(engine.graph()), opts);
  double l1 = 0.0;
  for (NodeId v = 0; v < 50; ++v) {
    l1 += std::abs(engine.NormalizedEstimate(v) - exact.scores[v]);
  }
  EXPECT_LT(l1, 0.3);
}

TEST(UpdatePolicyTest, RedoTouchesFewerSegmentsAsItDrifts) {
  // A consequence of the drift: shortened segments carry fewer step
  // visits, so later arrivals find fewer candidates to repair.
  Rng rng(7);
  auto edges = ErdosRenyi(80, 1200, &rng);
  IncrementalPageRank reroute(
      80, Opts(10, 0.2, 8, UpdatePolicy::kRerouteFromVisit));
  IncrementalPageRank redo(
      80, Opts(10, 0.2, 8, UpdatePolicy::kRedoFromSource));
  for (const Edge& e : edges) {
    ASSERT_TRUE(reroute.AddEdge(e.src, e.dst).ok());
    ASSERT_TRUE(redo.AddEdge(e.src, e.dst).ok());
  }
  EXPECT_LT(redo.lifetime_stats().segments_updated,
            reroute.lifetime_stats().segments_updated);
}

TEST(UpdatePolicyTest, DanglingResumeUnderRedo) {
  // First out-edge of a node with waiting dangles: under redo policy the
  // dangles are regenerated from their sources.
  DiGraph g(3);
  ASSERT_TRUE(g.AddEdge(1, 0).ok());
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  WalkStore store;
  store.set_update_policy(UpdatePolicy::kRedoFromSource);
  store.Init(g, 100, 0.2, 9);
  const std::size_t dangles = store.DanglingCount(0);
  EXPECT_GT(dangles, 0u);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  Rng rng(10);
  auto stats = store.OnEdgeInserted(g, 0, 1, &rng);
  EXPECT_EQ(stats.segments_updated, dangles);
  EXPECT_EQ(store.DanglingCount(0), 0u);
  store.CheckConsistency(g);
}

class PolicyChurnTest : public ::testing::TestWithParam<UpdatePolicy> {};

TEST_P(PolicyChurnTest, InvariantsUnderChurn) {
  Rng rng(11);
  auto edges = ErdosRenyi(40, 250, &rng);
  DiGraph g(40);
  WalkStore store;
  store.set_update_policy(GetParam());
  store.Init(g, 5, 0.25, 12);
  Rng update_rng(13);
  std::vector<Edge> live;
  for (const Edge& e : edges) {
    ASSERT_TRUE(g.AddEdge(e.src, e.dst).ok());
    store.OnEdgeInserted(g, e.src, e.dst, &update_rng);
    live.push_back(e);
    if (live.size() > 30 && update_rng.Bernoulli(0.3)) {
      std::size_t i = update_rng.UniformIndex(live.size());
      Edge victim = live[i];
      live[i] = live.back();
      live.pop_back();
      ASSERT_TRUE(g.RemoveEdge(victim.src, victim.dst).ok());
      store.OnEdgeRemoved(g, victim.src, victim.dst, &update_rng);
    }
  }
  store.CheckConsistency(g);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyChurnTest,
                         ::testing::Values(UpdatePolicy::kRerouteFromVisit,
                                           UpdatePolicy::kRedoFromSource));

TEST(TheoryTopKTest, TheoryLengthTopKWorks) {
  Rng rng(15);
  auto edges = ErdosRenyi(200, 2000, &rng);
  DiGraph g(200);
  for (const Edge& e : edges) ASSERT_TRUE(g.AddEdge(e.src, e.dst).ok());
  MonteCarloOptions mc;
  mc.walks_per_node = 10;
  mc.epsilon = 0.2;
  IncrementalPageRank engine(g, mc);
  PersonalizedPageRankWalker walker(&engine.walk_store(),
                                    &engine.social_store());
  std::vector<ScoredNode> ranked;
  PersonalizedWalkResult stats;
  ASSERT_TRUE(walker
                  .TopKWithTheoryLength(5, 10, /*alpha=*/0.75, /*c=*/5.0,
                                        true, 16, &ranked, &stats)
                  .ok());
  EXPECT_FALSE(ranked.empty());
  // Equation (4) with k=10, n=200, alpha=0.75, c=5:
  // s = 20 * 10 * 20^{0.25} ~ 423.
  EXPECT_NEAR(static_cast<double>(stats.length), 423.0, 30.0);
}

TEST(TheoryTopKTest, RejectsBadParameters) {
  SocialStore social(5);
  WalkStore store;
  DiGraph g(5);
  store.Init(g, 1, 0.2, 17);
  PersonalizedPageRankWalker walker(&store, &social);
  std::vector<ScoredNode> ranked;
  EXPECT_TRUE(walker.TopKWithTheoryLength(0, 10, 1.5, 5.0, true, 1, &ranked)
                  .IsInvalidArgument());
  EXPECT_TRUE(walker.TopKWithTheoryLength(0, 0, 0.75, 5.0, true, 1, &ranked)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace fastppr
