file(REMOVE_RECURSE
  "CMakeFiles/csv_writer_test.dir/tests/csv_writer_test.cpp.o"
  "CMakeFiles/csv_writer_test.dir/tests/csv_writer_test.cpp.o.d"
  "csv_writer_test"
  "csv_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
