#ifndef FASTPPR_BASELINE_COSINE_H_
#define FASTPPR_BASELINE_COSINE_H_

#include <vector>

#include "fastppr/graph/csr_graph.h"
#include "fastppr/graph/types.h"

namespace fastppr {

/// The COSINE link predictor of Appendix A: the hub score of v is the
/// cosine similarity between the out-neighbour sets of the seed u and of v
/// (as 0/1 vectors), and the authority score is
///   a_x = sum_{(v,x) in E} h_v.
///
/// Computed sparsely: only nodes sharing at least one out-neighbour with
/// the seed get a non-zero hub score, found by walking the in-lists of the
/// seed's out-neighbours.
struct CosineResult {
  std::vector<double> hub;
  std::vector<double> authority;
};

CosineResult CosineSimilarityScores(const CsrGraph& g, NodeId seed);

}  // namespace fastppr

#endif  // FASTPPR_BASELINE_COSINE_H_
