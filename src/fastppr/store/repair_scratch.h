#ifndef FASTPPR_STORE_REPAIR_SCRATCH_H_
#define FASTPPR_STORE_REPAIR_SCRATCH_H_

// Batched-repair collection machinery shared by WalkStore and
// SalsaWalkStore (companion to SlabPool; see DESIGN.md). Both stores
// collect every switch/break decision of an ingestion window *before*
// re-simulating any suffix — a fresh suffix is already distributed for
// the new graph and must never be switched twice — keeping only the
// earliest affected position per segment. The collection state
// (epoch-stamped per-segment dedup, Floyd-sampling scratch) is identical
// in both stores; it lives here once.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "fastppr/graph/types.h"
#include "fastppr/store/walk_slab.h"
#include "fastppr/util/random.h"

namespace fastppr::slab {

/// Swap-removes index entry (node, slot) — known to reference
/// (seg, pos) — from `pool`, fixing up the moved entry's backpointer in
/// the path arena. Does NOT clear the removed path word's slot field;
/// callers deleting the entry skip that write, others must reset it
/// themselves.
inline void RemoveIndexEntry(SlabPool* pool, SlabPool* paths, NodeId node,
                             uint32_t slot, uint64_t seg, uint32_t pos) {
  const uint64_t here = Pack(seg, pos);
  const uint64_t moved = pool->VerifiedSwapRemove(node, slot, here);
  if (moved != here) {
    paths->SetLo(Hi(moved), Lo(moved), slot);
  }
}

/// Overflow-capped delta feed for the snapshot publishers
/// (store/segment_snapshot.h): while tracking is on, Record() appends an
/// entry (a repaired segment id, an applied edge) until the cap, past
/// which the feed drops its contents and flags the overflow — a full
/// snapshot copy is cheaper than the delta at that point, and the feed
/// must stay bounded even with no consumer draining it. Off by default
/// so producers without a serving layer pay nothing. Shared by
/// WalkStore, SalsaWalkStore and ShardedEngine so the overflow rule
/// cannot drift between them.
template <typename Entry>
class DirtyFeed {
 public:
  /// (Re)binds the overflow cap; drops any recorded state.
  void ResetCap(std::size_t cap) {
    cap_ = cap;
    entries_.clear();
    entries_.shrink_to_fit();
    overflow_ = false;
  }

  /// One up-front reservation at the cap, so recording on the
  /// producers' hot paths never reallocates. Turning tracking off
  /// releases the reservation: a producer whose serving layer is gone
  /// stops paying for it in memory too.
  void SetTracking(bool on) {
    tracking_ = on;
    if (on) {
      entries_.reserve(cap_);
    } else {
      entries_.clear();
      entries_.shrink_to_fit();
      overflow_ = false;
    }
  }
  bool tracking() const { return tracking_; }

  void Record(const Entry& entry) {
    if (!tracking_ || overflow_) return;
    if (entries_.size() >= cap_) {
      // Past the cap the next publish full-copies anyway: drop what we
      // have and stop paying for entries guaranteed to be discarded
      // (until Clear() re-arms the feed).
      overflow_ = true;
      entries_.clear();
      return;
    }
    entries_.push_back(entry);
  }

  std::span<const Entry> entries() const { return entries_; }
  /// True once the feed overflowed since the last Clear(): it was
  /// dropped and the next snapshot publish must full-copy.
  bool overflowed() const { return overflow_; }
  void Clear() {
    entries_.clear();
    overflow_ = false;
  }

 private:
  bool tracking_ = false;
  bool overflow_ = false;
  std::size_t cap_ = 0;
  std::vector<Entry> entries_;
};

/// The walk stores' DirtyFeed cap: ~this shard's OWNED row count
/// (unowned rows are empty and never repaired), not the global row
/// count — at S shards that is 1/S the feed reservation — with slack
/// for duplicate records, clamped to the row total.
inline std::size_t DirtyCapForOwnedRows(const SlabPool& rows) {
  std::size_t owned = 0;
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    if (rows.Size(r) > 0) ++owned;
  }
  return std::min(rows.num_rows(), owned + owned / 2 + 64);
}

/// Reusable collection scratch for one batched update: zero steady-state
/// allocation. `Repair` is the store's pending-repair struct; it must
/// expose public `seg` (uint64_t) and `pos` (uint32_t) members.
template <typename Repair>
class RepairScratch {
 public:
  /// Re-sizes the per-segment dedup table (call whenever the store is
  /// (re)built with a new segment count).
  void ResetSegments(std::size_t num_segments) {
    pending_.clear();
    meta_.assign(num_segments, 0);
    epoch_ = 0;
  }

  /// Starts a fresh collection epoch (O(1) amortized).
  void BeginEpoch() {
    pending_.clear();
    if (epoch_ == static_cast<uint32_t>(-1)) {
      std::fill(meta_.begin(), meta_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
  }

  /// Records a repair candidate, keeping the earliest position per
  /// segment.
  void Offer(const Repair& cand) {
    uint64_t& meta = meta_[cand.seg];
    if ((meta >> 32) != epoch_) {
      meta = (static_cast<uint64_t>(epoch_) << 32) | pending_.size();
      pending_.push_back(cand);
      return;
    }
    Repair& have = pending_[static_cast<uint32_t>(meta)];
    if (cand.pos < have.pos) have = cand;
  }

  bool empty() const { return pending_.empty(); }
  const std::vector<Repair>& pending() const { return pending_; }

  /// Large pending sets are applied in segment order so the repair pass
  /// walks the path arena sequentially (repairs are independent, so the
  /// ordering is free to choose).
  void OrderForApply() {
    if (pending_.size() <= 32) return;
    std::sort(pending_.begin(), pending_.end(),
              [](const Repair& a, const Repair& b) { return a.seg < b.seg; });
  }

  /// Samples `marks` distinct indices in [0, w) into picked() (Floyd's
  /// algorithm; epoch-stamped membership, zero allocation).
  void SampleDistinct(std::size_t w, uint64_t marks, Rng* rng) {
    if (pick_epoch_.size() < w) pick_epoch_.resize(w, 0);
    if (pick_epoch_counter_ == static_cast<uint32_t>(-1)) {
      std::fill(pick_epoch_.begin(), pick_epoch_.end(), 0);
      pick_epoch_counter_ = 0;
    }
    ++pick_epoch_counter_;
    picked_.clear();
    auto try_pick = [&](std::size_t idx) {
      if (pick_epoch_[idx] == pick_epoch_counter_) return false;
      pick_epoch_[idx] = pick_epoch_counter_;
      picked_.push_back(idx);
      return true;
    };
    for (std::size_t j = w - marks; j < w; ++j) {
      std::size_t t = rng->UniformIndex(j + 1);
      if (!try_pick(t)) try_pick(j);
    }
  }

  /// Insertion-ordered result of the last SampleDistinct.
  const std::vector<std::size_t>& picked() const { return picked_; }

 private:
  std::vector<Repair> pending_;
  /// Per segment: (collection epoch << 32) | slot into pending_.
  std::vector<uint64_t> meta_;
  uint32_t epoch_ = 0;
  /// Floyd-sampling scratch: pick_epoch_[i] == pick_epoch_counter_ marks
  /// index i as picked this round.
  std::vector<uint32_t> pick_epoch_;
  std::vector<std::size_t> picked_;
  uint32_t pick_epoch_counter_ = 0;
};

}  // namespace fastppr::slab

#endif  // FASTPPR_STORE_REPAIR_SCRATCH_H_
