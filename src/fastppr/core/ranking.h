#ifndef FASTPPR_CORE_RANKING_H_
#define FASTPPR_CORE_RANKING_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "fastppr/graph/types.h"

namespace fastppr {

/// Nodes with the k highest counts, descending, ties broken by node id
/// ascending. The single ranking used by the flat engines' TopK, the
/// sharded engine's merged TopK and the query service's snapshot TopK —
/// one comparator, so the S=1 bit-identity contract between them is
/// structural.
inline void TopKByCountInto(std::span<const int64_t> counts, std::size_t k,
                            std::vector<NodeId>* order) {
  order->resize(counts.size());
  for (NodeId v = 0; v < order->size(); ++v) (*order)[v] = v;
  const std::size_t take = std::min(k, order->size());
  std::partial_sort(order->begin(), order->begin() + take, order->end(),
                    [&counts](NodeId a, NodeId b) {
                      if (counts[a] != counts[b]) {
                        return counts[a] > counts[b];
                      }
                      return a < b;
                    });
  order->resize(take);
}

inline std::vector<NodeId> TopKByCount(std::span<const int64_t> counts,
                                       std::size_t k) {
  std::vector<NodeId> order;
  TopKByCountInto(counts, k, &order);
  return order;
}

}  // namespace fastppr

#endif  // FASTPPR_CORE_RANKING_H_
