file(REMOVE_RECURSE
  "CMakeFiles/csr_graph_test.dir/tests/csr_graph_test.cpp.o"
  "CMakeFiles/csr_graph_test.dir/tests/csr_graph_test.cpp.o.d"
  "csr_graph_test"
  "csr_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
