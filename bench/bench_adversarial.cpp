// Example 1: the random-order assumption is necessary. On the paper's
// trap network, an adversary that schedules the edge (u, v1) before any
// other u-sourced edge forces Omega(n) walk segments to be updated by
// that single arrival; under a random permutation of the very same edge
// set, per-arrival work stays tiny.

#include <cstdio>

#include "bench_common.h"
#include "fastppr/core/incremental_pagerank.h"
#include "fastppr/graph/edge_stream.h"
#include "fastppr/graph/generators.h"
#include "fastppr/util/histogram.h"
#include "fastppr/util/table_printer.h"

using namespace fastppr;
using namespace fastppr::bench;

int main() {
  Banner("Adversarial vs random-order arrivals on the trap network",
         "Example 1 of Bahmani et al., VLDB 2010");

  const std::size_t R = 5;
  const double eps = 0.2;

  CsvWriter csv;
  const bool have_csv = OpenCsv(
      "adversarial.csv",
      {"n", "trap_arrival_updates", "random_mean_updates", "nR"}, &csv);

  TablePrinter table({"n (nodes)", "updates at the trap arrival "
                      "(adversarial)",
                      "mean updates/arrival (random order)", "nR"});
  for (std::size_t N : {200u, 500u, 1000u, 2000u}) {
    TrapGraph trap = MakeTrapGraph(N);
    MonteCarloOptions mc;
    mc.walks_per_node = R;
    mc.epsilon = eps;
    mc.seed = N;

    // Adversarial order: replay the stream verbatim; record the work of
    // the u -> v1 arrival.
    IncrementalPageRank adversarial(trap.num_nodes, mc);
    uint64_t trap_updates = 0;
    for (std::size_t i = 0; i < trap.adversarial_stream.size(); ++i) {
      const Edge& e = trap.adversarial_stream[i];
      if (!adversarial.AddEdge(e.src, e.dst).ok()) return 1;
      if (i == trap.trap_edge_index) {
        trap_updates = adversarial.last_event_stats().segments_updated;
      }
    }

    // Random order of the same edges.
    Rng rng(300 + N);
    IncrementalPageRank random_order(trap.num_nodes, mc);
    RandomPermutationStream stream(trap.adversarial_stream, &rng);
    RunningStats updates;
    while (auto ev = stream.Next()) {
      if (!random_order.ApplyEvent(*ev).ok()) return 1;
      updates.Add(static_cast<double>(
          random_order.last_event_stats().segments_updated));
    }

    table.AddRow({std::to_string(trap.num_nodes),
                  TablePrinter::Fmt(static_cast<uint64_t>(trap_updates)),
                  TablePrinter::Fmt(updates.mean(), 3),
                  TablePrinter::Fmt(
                      static_cast<uint64_t>(trap.num_nodes * R))});
    if (have_csv) {
      csv.AddRow({std::to_string(trap.num_nodes),
                  std::to_string(trap_updates),
                  TablePrinter::Fmt(updates.mean(), 4),
                  std::to_string(trap.num_nodes * R)});
    }
  }
  table.Print();
  std::printf("\nshape check: the adversarial arrival updates a constant "
              "fraction of all nR segments (Omega(n)); random order stays "
              "O(1) per arrival.\n"
              "note: the trap requires u's out-edges to arrive after "
              "(u, v1) — with u's full out-neighbourhood already in place "
              "the coupling touches only O(R/eps) segments, which is why "
              "the adversary also controls the order (see DESIGN.md).\n");
  return 0;
}
