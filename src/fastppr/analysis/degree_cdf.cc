#include "fastppr/analysis/degree_cdf.h"

#include <algorithm>
#include <map>

#include "fastppr/util/check.h"

namespace fastppr {

std::vector<DegreeCdfPoint> ComputeDegreeCdfs(
    const DiGraph& snapshot,
    const std::vector<std::size_t>& arrival_source_degrees) {
  // Degree -> total out-edge mass at that degree.
  std::map<std::size_t, double> existing_mass;
  double total_mass = 0.0;
  for (NodeId v = 0; v < snapshot.num_nodes(); ++v) {
    const std::size_t d = snapshot.OutDegree(v);
    if (d == 0) continue;
    existing_mass[d] += static_cast<double>(d);
    total_mass += static_cast<double>(d);
  }
  std::map<std::size_t, double> arrival_mass;
  for (std::size_t d : arrival_source_degrees) arrival_mass[d] += 1.0;
  const double total_arrivals =
      static_cast<double>(arrival_source_degrees.size());

  // Merge the degree axes and accumulate both CDFs.
  std::vector<std::size_t> degrees;
  for (const auto& [d, unused] : existing_mass) degrees.push_back(d);
  for (const auto& [d, unused] : arrival_mass) degrees.push_back(d);
  std::sort(degrees.begin(), degrees.end());
  degrees.erase(std::unique(degrees.begin(), degrees.end()), degrees.end());

  std::vector<DegreeCdfPoint> points;
  double acc_existing = 0.0;
  double acc_arrival = 0.0;
  for (std::size_t d : degrees) {
    auto it = existing_mass.find(d);
    if (it != existing_mass.end()) acc_existing += it->second;
    auto jt = arrival_mass.find(d);
    if (jt != arrival_mass.end()) acc_arrival += jt->second;
    DegreeCdfPoint p;
    p.degree = d;
    p.existing = total_mass > 0.0 ? acc_existing / total_mass : 0.0;
    p.arrival = total_arrivals > 0.0 ? acc_arrival / total_arrivals : 0.0;
    points.push_back(p);
  }
  return points;
}

double MeanMxStatistic(const std::vector<double>& pagerank,
                       const std::vector<NodeId>& arrival_sources,
                       const std::vector<std::size_t>& arrival_source_degrees,
                       std::size_t num_edges) {
  FASTPPR_CHECK(arrival_sources.size() == arrival_source_degrees.size());
  if (arrival_sources.empty()) return 0.0;
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < arrival_sources.size(); ++i) {
    const std::size_t d = arrival_source_degrees[i];
    if (d == 0) continue;  // the paper drops edges from brand-new nodes
    acc += static_cast<double>(num_edges) * pagerank[arrival_sources[i]] /
           static_cast<double>(d);
    ++counted;
  }
  return counted > 0 ? acc / static_cast<double>(counted) : 0.0;
}

}  // namespace fastppr
