#include "fastppr/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "fastppr/util/check.h"

namespace fastppr {

namespace {

/// Weighted sampler over dynamically growing discrete weights, implemented
/// as the classic "repeat-edge-endpoint" trick generalized with an
/// attractiveness term: maintain a flat multiset where node v appears once
/// per unit of integer weight, plus rejection for the fractional
/// attractiveness component. For our use (attractiveness >= 0, integer
/// degree part) we keep it simple: a vector of endpoints (degree part) and
/// uniform node choice for the attractiveness part, mixing the two streams
/// proportionally.
class DegreePlusASampler {
 public:
  DegreePlusASampler(std::size_t active_nodes, double a)
      : active_(active_nodes), a_(a) {}

  void SetActive(std::size_t active_nodes) { active_ = active_nodes; }
  void RecordHit(NodeId v) { endpoints_.push_back(v); }

  /// Samples v with probability proportional to hits(v) + a over the active
  /// node range [0, active).
  NodeId Sample(Rng* rng) const {
    double total_degree = static_cast<double>(endpoints_.size());
    double total_a = a_ * static_cast<double>(active_);
    double u = rng->NextDouble() * (total_degree + total_a);
    if (u < total_degree && !endpoints_.empty()) {
      return endpoints_[rng->UniformIndex(endpoints_.size())];
    }
    return static_cast<NodeId>(rng->UniformIndex(active_));
  }

 private:
  std::size_t active_;
  double a_;
  std::vector<NodeId> endpoints_;
};

}  // namespace

std::vector<Edge> ErdosRenyi(std::size_t n, std::size_t m, Rng* rng) {
  FASTPPR_CHECK(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  std::unordered_set<Edge, EdgeHash> seen;
  const bool dedup = m < n * (n - 1) / 2;
  while (edges.size() < m) {
    NodeId src = static_cast<NodeId>(rng->UniformIndex(n));
    NodeId dst = static_cast<NodeId>(rng->UniformIndex(n));
    if (src == dst) continue;
    Edge e{src, dst};
    if (dedup && !seen.insert(e).second) continue;
    edges.push_back(e);
  }
  return edges;
}

std::vector<Edge> PreferentialAttachment(
    const PreferentialAttachmentOptions& opts, Rng* rng) {
  const std::size_t n = opts.num_nodes;
  const std::size_t k = opts.out_per_node;
  const std::size_t core = std::max<std::size_t>(2, opts.seed_clique);
  FASTPPR_CHECK(n > core);

  std::vector<Edge> edges;
  edges.reserve(n * k);
  DegreePlusASampler in_sampler(core, opts.attractiveness);
  DegreePlusASampler out_sampler(core, 1.0);

  // Bootstrap clique.
  for (NodeId i = 0; i < core; ++i) {
    for (NodeId j = 0; j < core; ++j) {
      if (i == j) continue;
      edges.push_back(Edge{i, j});
      in_sampler.RecordHit(j);
      out_sampler.RecordHit(i);
    }
  }

  for (NodeId v = static_cast<NodeId>(core); v < n; ++v) {
    in_sampler.SetActive(v);
    out_sampler.SetActive(v);
    for (std::size_t e = 0; e < k; ++e) {
      NodeId src = v;
      if (rng->Bernoulli(opts.p_internal)) {
        src = out_sampler.Sample(rng);
      }
      NodeId dst = in_sampler.Sample(rng);
      // Reject self-loops with a bounded retry budget; fall back to a
      // uniform target so the stream length stays exactly n*k edges.
      int attempts = 0;
      while (dst == src && attempts++ < 16) dst = in_sampler.Sample(rng);
      if (dst == src) {
        dst = static_cast<NodeId>(rng->UniformIndex(v));
        if (dst == src) dst = (src + 1) % v;
      }
      edges.push_back(Edge{src, dst});
      in_sampler.RecordHit(dst);
      out_sampler.RecordHit(src);
    }
    // The new node itself becomes attachable after issuing its edges.
    in_sampler.SetActive(v + 1);
    out_sampler.SetActive(v + 1);
  }
  return edges;
}

std::vector<Edge> ChungLuDirected(const ChungLuOptions& opts, Rng* rng) {
  const std::size_t n = opts.num_nodes;
  FASTPPR_CHECK(n >= 2);
  FASTPPR_CHECK(opts.alpha_in > 0.0 && opts.alpha_in < 1.0);
  FASTPPR_CHECK(opts.alpha_out > 0.0 && opts.alpha_out < 1.0);

  // Random node relabelings so that in- and out-weight ranks are
  // independent and node id carries no degree signal.
  std::vector<std::size_t> in_label(n), out_label(n);
  for (std::size_t i = 0; i < n; ++i) in_label[i] = out_label[i] = i;
  if (opts.relabel) {
    rng->Shuffle(&in_label);
    rng->Shuffle(&out_label);
  }

  auto make_cdf = [n](double alpha, const std::vector<std::size_t>& label) {
    std::vector<double> cdf(n);
    double acc = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
      acc += std::pow(static_cast<double>(rank + 1), -alpha);
      cdf[rank] = acc;
    }
    (void)label;
    return cdf;
  };
  // cdf[rank]; node with in-rank r is in_label[r].
  std::vector<double> in_cdf = make_cdf(opts.alpha_in, in_label);
  std::vector<double> out_cdf = make_cdf(opts.alpha_out, out_label);

  std::vector<Edge> edges;
  edges.reserve(opts.num_edges);
  while (edges.size() < opts.num_edges) {
    NodeId src = static_cast<NodeId>(out_label[SampleFromCdf(out_cdf, rng)]);
    NodeId dst = static_cast<NodeId>(in_label[SampleFromCdf(in_cdf, rng)]);
    if (src == dst) continue;
    edges.push_back(Edge{src, dst});
  }
  return edges;
}

std::vector<Edge> TriadicClosureStream(const TriadicStreamOptions& opts,
                                       Rng* rng) {
  const std::size_t n = opts.num_nodes;
  const std::size_t k = opts.out_per_node;
  const std::size_t core = std::max<std::size_t>(2, opts.seed_clique);
  FASTPPR_CHECK(n > core);

  std::vector<std::vector<NodeId>> out(n);
  std::vector<std::vector<NodeId>> in(n);
  std::vector<std::size_t> indeg(n, 0);
  std::vector<Edge> edges;
  edges.reserve(n * k);
  DegreePlusASampler in_sampler(core, opts.attractiveness);

  auto add_edge = [&](NodeId s, NodeId d) {
    edges.push_back(Edge{s, d});
    out[s].push_back(d);
    in[d].push_back(s);
    ++indeg[d];
    in_sampler.RecordHit(d);
  };

  // One friend-of-friend draw: a uniformly random followee's uniformly
  // random followee, or kInvalidNode if the chain dead-ends.
  auto draw_fof = [&](NodeId src) {
    if (out[src].empty()) return kInvalidNode;
    NodeId mid = out[src][rng->UniformIndex(out[src].size())];
    if (out[mid].empty()) return kInvalidNode;
    return out[mid][rng->UniformIndex(out[mid].size())];
  };

  // One co-follower draw (forward-backward-forward): a follower of one of
  // src's followees, and then that co-follower's followee.
  auto draw_cofollower = [&](NodeId src) {
    if (out[src].empty()) return kInvalidNode;
    NodeId x = out[src][rng->UniformIndex(out[src].size())];
    if (in[x].empty()) return kInvalidNode;
    NodeId v = in[x][rng->UniformIndex(in[x].size())];
    if (v == src || out[v].empty()) return kInvalidNode;
    return out[v][rng->UniformIndex(out[v].size())];
  };

  for (NodeId i = 0; i < core; ++i) {
    for (NodeId j = 0; j < core; ++j) {
      if (i != j) add_edge(i, j);
    }
  }

  auto already_follows = [&](NodeId s, NodeId d) {
    const auto& list = out[s];
    return std::find(list.begin(), list.end(), d) != list.end();
  };

  for (NodeId v = static_cast<NodeId>(core); v < n; ++v) {
    in_sampler.SetActive(v);
    for (std::size_t e = 0; e < k; ++e) {
      NodeId src = v;
      if (rng->Bernoulli(opts.p_internal)) {
        src = static_cast<NodeId>(rng->UniformIndex(v));
      }
      NodeId dst = kInvalidNode;
      const int max_attempts = opts.avoid_duplicates ? 8 : 1;
      for (int attempt = 0; attempt < max_attempts; ++attempt) {
        NodeId cand = kInvalidNode;
        if (rng->Bernoulli(opts.p_triadic)) {
          // Neighbourhood closure. With closure_candidates > 1, a
          // candidate hit by several independent draws wins — multi-path
          // (locally popular) accounts attract the follows.
          const bool cofollow = rng->Bernoulli(opts.p_cofollower);
          NodeId draws[8];
          std::size_t k_draws =
              std::min<std::size_t>(8,
                                    std::max<std::size_t>(
                                        1, opts.closure_candidates));
          std::size_t got = 0;
          for (std::size_t c = 0; c < k_draws; ++c) {
            NodeId w = cofollow ? draw_cofollower(src) : draw_fof(src);
            if (w != kInvalidNode) draws[got++] = w;
          }
          std::size_t best_count = 0;
          for (std::size_t a = 0; a < got; ++a) {
            std::size_t count = 0;
            for (std::size_t b = 0; b < got; ++b) {
              if (draws[b] == draws[a]) ++count;
            }
            if (count > best_count) {
              best_count = count;
              cand = draws[a];
            }
          }
        }
        if (cand == kInvalidNode) cand = in_sampler.Sample(rng);
        if (cand == src) continue;
        dst = cand;
        if (!opts.avoid_duplicates || !already_follows(src, cand)) break;
      }
      if (dst == kInvalidNode || dst == src) {
        dst = static_cast<NodeId>(rng->UniformIndex(n));
        if (dst == src) dst = (src + 1) % static_cast<NodeId>(n);
      }
      add_edge(src, dst);
      if (rng->Bernoulli(opts.p_reciprocal) && !already_follows(dst, src)) {
        add_edge(dst, src);
      }
    }
    in_sampler.SetActive(v + 1);
  }
  return edges;
}

TrapGraph MakeTrapGraph(std::size_t cycle_len) {
  FASTPPR_CHECK(cycle_len >= 2);
  const std::size_t nn = cycle_len;
  TrapGraph trap;
  trap.num_nodes = 3 * nn + 1;
  // Layout: v_1..v_N = [0, N), u = N, x_1..x_N = [N+1, 2N+1),
  // y_1..y_N = [2N+1, 3N+1).
  auto v_node = [](std::size_t j) { return static_cast<NodeId>(j); };
  const NodeId u = static_cast<NodeId>(nn);
  auto x_node = [nn](std::size_t j) { return static_cast<NodeId>(nn + 1 + j); };
  auto y_node = [nn](std::size_t j) {
    return static_cast<NodeId>(2 * nn + 1 + j);
  };
  trap.u = u;
  trap.v1 = v_node(0);

  std::vector<Edge>& s = trap.adversarial_stream;
  for (std::size_t j = 0; j < nn; ++j) {
    s.push_back(Edge{v_node(j), v_node((j + 1) % nn)});  // cycle
    s.push_back(Edge{v_node(j), u});                     // v_j -> u
    s.push_back(Edge{x_node(j), u});                     // x_j -> u
    s.push_back(Edge{v_node(0), y_node(j)});             // v_1 -> y_j
    s.push_back(Edge{y_node(j), v_node(0)});             // y_j -> v_1
  }
  trap.trap_edge_index = s.size();
  s.push_back(Edge{u, v_node(0)});  // the adversarial arrival
  for (std::size_t j = 0; j < nn; ++j) {
    s.push_back(Edge{u, x_node(j)});  // u -> x_j, arriving last
  }
  return trap;
}

std::vector<Edge> DirectedCycle(std::size_t n) {
  std::vector<Edge> edges;
  edges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    edges.push_back(
        Edge{static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n)});
  }
  return edges;
}

std::vector<Edge> StarInto(std::size_t n_leaves) {
  std::vector<Edge> edges;
  edges.reserve(n_leaves);
  for (std::size_t i = 1; i <= n_leaves; ++i) {
    edges.push_back(Edge{static_cast<NodeId>(i), 0});
  }
  return edges;
}

std::vector<Edge> CompleteDigraph(std::size_t n) {
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        edges.push_back(Edge{static_cast<NodeId>(i), static_cast<NodeId>(j)});
      }
    }
  }
  return edges;
}

}  // namespace fastppr
