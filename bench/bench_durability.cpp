// Durability subsystem cost (DESIGN.md §8): what the WAL + checkpoint
// layer charges the ingestion path, and how fast a crashed store comes
// back.
//
//   * wal_overhead_pct          — ingestion slowdown with an fsync'd WAL
//                                 record per window vs the same engine
//                                 without durability (target: < 15% at
//                                 production window sizes);
//   * checkpoint_write_mb_s     — serialized arena bytes through the
//                                 tmp + fsync + rename protocol;
//   * recovery_ms               — crash-to-serving latency from a recent
//                                 checkpoint plus a short WAL tail;
//   * wal_replay_events_per_sec — replay throughput when recovery has to
//                                 re-ingest the whole stream from the log
//                                 (checkpoint taken at window 0 only).
//
//   bench_durability [--smoke] [--json <path>]
//
// --smoke shrinks the stream to CI size so the report path is exercised
// on every push.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fastppr/core/incremental_pagerank.h"
#include "fastppr/engine/sharded_engine.h"
#include "fastppr/graph/generators.h"
#include "fastppr/store/checkpoint.h"
#include "fastppr/util/check.h"
#include "fastppr/util/table_printer.h"
#include "fastppr/util/timer.h"

using namespace fastppr;
using namespace fastppr::bench;

namespace {

using PrEngine = ShardedEngine<IncrementalPageRank>;

std::vector<EdgeEvent> PowerLawEvents(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  PreferentialAttachmentOptions gen;
  gen.num_nodes = n;
  gen.out_per_node = 10;
  auto edges = PreferentialAttachment(gen, &rng);
  rng.Shuffle(&edges);
  std::vector<EdgeEvent> events;
  events.reserve(edges.size());
  for (const Edge& e : edges) {
    events.push_back(EdgeEvent{EdgeEvent::Kind::kInsert, e});
  }
  return events;
}

/// bench_common's shared window loop, bound to an engine.
double TimeEngineWindows(PrEngine* engine,
                         const std::vector<EdgeEvent>& events,
                         std::size_t window) {
  return TimeWindows(events, window, [&](std::span<const EdgeEvent> w) {
    return engine->ApplyEvents(w);
  });
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  FASTPPR_CHECK(!ec);
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  Banner("Durability: WAL overhead, checkpoint bandwidth, restart latency",
         "the production PageRank Store deployment of Bahmani et al., "
         "VLDB 2010 (Section 1.1)");

  const std::size_t n = smoke ? 2000 : 20000;
  const std::size_t R = 5;
  const double eps = 0.2;
  const std::size_t window = smoke ? 512 : 4096;

  const auto events = PowerLawEvents(n, 77);
  std::printf("power-law stream: n=%zu, m=%zu insertions, R=%zu, "
              "eps=%.2f, window=%zu%s\n\n",
              n, events.size(), R, eps, window, smoke ? " (smoke)" : "");

  MonteCarloOptions mc;
  mc.walks_per_node = R;
  mc.epsilon = eps;
  mc.seed = 90;
  ShardedOptions sharding;
  sharding.num_shards = 1;
  sharding.num_threads = 1;

  JsonReport report("durability");
  report.Add("num_nodes", static_cast<double>(n));
  report.Add("num_events", static_cast<double>(events.size()));
  report.Add("window", static_cast<double>(window));
  report.Add("smoke", smoke ? 1.0 : 0.0);

  // --- Ingestion with and without the log. Best of two fresh runs each;
  // determinism makes the reps bit-identical, so the spread is noise.
  const double base_eps_sec = BestOfTwo([&] {
    PrEngine engine(n, mc, sharding);
    return TimeEngineWindows(&engine, events, window);
  });

  const std::string wal_dir = FreshDir("fastppr_bench_durability_wal");
  std::unique_ptr<PrEngine> durable_holder;
  const double durable_eps_sec = BestOfTwo([&] {
    durable_holder = std::make_unique<PrEngine>(n, mc, sharding);
    DurabilityOptions dopts;
    dopts.directory = wal_dir;
    dopts.checkpoint_interval_windows = 0;  // log only; no mid-stream ckpt
    FASTPPR_CHECK(durable_holder->EnableDurability(dopts).ok());
    return TimeEngineWindows(durable_holder.get(), events, window);
  });
  const double wal_overhead_pct =
      100.0 * (base_eps_sec - durable_eps_sec) / base_eps_sec;

  // --- Checkpoint bandwidth: serialize + fsync + rename the full arena
  // state of the loaded engine.
  const double ckpt_sec = BestOfN(3, [&] {
    WallTimer timer;
    FASTPPR_CHECK(durable_holder->Checkpoint().ok());
    return 1.0 / timer.ElapsedSeconds();
  });
  std::error_code ec;
  const auto ckpt_bytes = std::filesystem::file_size(
      std::filesystem::path(wal_dir) / kCheckpointFileName, ec);
  FASTPPR_CHECK(!ec);
  const double checkpoint_write_mb_s =
      static_cast<double>(ckpt_bytes) / (1024.0 * 1024.0) * ckpt_sec;

  // --- Restart latency from that fresh checkpoint (empty WAL tail).
  double recovery_ms = 0.0;
  {
    WallTimer timer;
    std::unique_ptr<PrEngine> recovered;
    RecoveryInfo info;
    FASTPPR_CHECK(PrEngine::Recover(wal_dir, 1, &recovered, &info).ok());
    recovery_ms = timer.ElapsedSeconds() * 1e3;
    FASTPPR_CHECK(recovered->windows_applied() ==
                  durable_holder->windows_applied());
    FASTPPR_CHECK(info.replayed_windows == 0);
  }

  // --- Replay throughput: recover a directory whose only checkpoint
  // predates the whole stream, so recovery re-ingests every window from
  // the log.
  const std::string replay_dir =
      FreshDir("fastppr_bench_durability_replay");
  {
    PrEngine engine(n, mc, sharding);
    DurabilityOptions dopts;
    dopts.directory = replay_dir;
    dopts.checkpoint_interval_windows = 0;
    FASTPPR_CHECK(engine.EnableDurability(dopts).ok());
    TimeEngineWindows(&engine, events, window);
  }
  double wal_replay_events_per_sec = 0.0;
  uint64_t replayed_events = 0;
  {
    WallTimer timer;
    std::unique_ptr<PrEngine> recovered;
    RecoveryInfo info;
    FASTPPR_CHECK(
        PrEngine::Recover(replay_dir, 1, &recovered, &info).ok());
    const double sec = timer.ElapsedSeconds();
    replayed_events = info.replayed_events;
    wal_replay_events_per_sec =
        static_cast<double>(info.replayed_events) / sec;
  }

  TablePrinter table({"metric", "value"});
  table.AddRow({"ingest events/sec (no durability)",
                TablePrinter::Fmt(base_eps_sec, 0)});
  table.AddRow({"ingest events/sec (WAL, fsync/window)",
                TablePrinter::Fmt(durable_eps_sec, 0)});
  table.AddRow({"WAL overhead %", TablePrinter::Fmt(wal_overhead_pct, 2)});
  table.AddRow({"checkpoint MB", TablePrinter::Fmt(
                                     static_cast<double>(ckpt_bytes) /
                                         (1024.0 * 1024.0),
                                     2)});
  table.AddRow({"checkpoint write MB/s",
                TablePrinter::Fmt(checkpoint_write_mb_s, 1)});
  table.AddRow({"recovery ms (fresh checkpoint)",
                TablePrinter::Fmt(recovery_ms, 2)});
  table.AddRow({"WAL replay events (full-log recovery)",
                std::to_string(replayed_events)});
  table.AddRow({"WAL replay events/sec",
                TablePrinter::Fmt(wal_replay_events_per_sec, 0)});
  table.Print();

  report.Add("base_events_per_sec", base_eps_sec);
  report.Add("durable_events_per_sec", durable_eps_sec);
  report.Add("wal_overhead_pct", wal_overhead_pct);
  report.Add("checkpoint_bytes", static_cast<double>(ckpt_bytes));
  report.Add("checkpoint_write_mb_s", checkpoint_write_mb_s);
  report.Add("recovery_ms", recovery_ms);
  report.Add("wal_replay_events_per_sec", wal_replay_events_per_sec);
  report.WriteTo(JsonPathFromArgs(argc, argv,
                                  ResultsDir() + "/BENCH_durability.json"));
  return 0;
}
