file(REMOVE_RECURSE
  "CMakeFiles/live_rank_dashboard.dir/examples/live_rank_dashboard.cpp.o"
  "CMakeFiles/live_rank_dashboard.dir/examples/live_rank_dashboard.cpp.o.d"
  "live_rank_dashboard"
  "live_rank_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_rank_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
