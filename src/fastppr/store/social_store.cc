#include "fastppr/store/social_store.h"

namespace fastppr {

SocialStore::SocialStore(std::size_t num_nodes, Options options)
    : options_(options), graph_(num_nodes),
      shard_reads_(options.num_shards, 0) {}

Status SocialStore::AddEdge(NodeId src, NodeId dst) {
  Status s = graph_.AddEdge(src, dst);
  if (s.ok()) ++writes_;
  return s;
}

Status SocialStore::RemoveEdge(NodeId src, NodeId dst) {
  Status s = graph_.RemoveEdge(src, dst);
  if (s.ok()) ++writes_;
  return s;
}

std::span<const NodeId> SocialStore::GetOutNeighbors(NodeId v) {
  CountRead(v);
  return graph_.OutNeighbors(v);
}

std::span<const NodeId> SocialStore::GetInNeighbors(NodeId v) {
  CountRead(v);
  return graph_.InNeighbors(v);
}

std::size_t SocialStore::GetOutDegree(NodeId v) {
  CountRead(v);
  return graph_.OutDegree(v);
}

std::size_t SocialStore::GetInDegree(NodeId v) {
  CountRead(v);
  return graph_.InDegree(v);
}

void SocialStore::ResetStats() {
  reads_ = 0;
  writes_ = 0;
  shard_reads_.assign(shard_reads_.size(), 0);
}

}  // namespace fastppr
