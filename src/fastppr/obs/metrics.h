#ifndef FASTPPR_OBS_METRICS_H_
#define FASTPPR_OBS_METRICS_H_

// Always-compiled-in metrics registry (DESIGN.md §9).
//
// A MetricsRegistry owns named counters, gauges and latency histograms.
// Counters are striped: each stripe is one cache-line-padded relaxed
// atomic (the SocialStore::CounterStripe idiom), so S repair threads
// incrementing "their" stripe never bounce a line. Hot paths retain raw
// handle pointers at registration time and never touch the registry
// mutex again; the mutex guards only registration and export iteration.
// Snapshots (ExportJson / Value / Total) read the live atomics with
// relaxed loads — writers are never stopped, a concurrent snapshot sees
// some valid recent value per cell.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fastppr/obs/latency_histogram.h"
#include "fastppr/util/check.h"

namespace fastppr::obs {

/// A named monotonic counter (or, via Set, a gauge) with per-stripe
/// cache-line-padded cells. Stripe indices are caller-assigned (shard
/// ids); stripes == 1 is a plain global counter.
class Counter {
 public:
  explicit Counter(std::size_t stripes)
      : stripes_(stripes), cells_(new Cell[stripes]) {
    FASTPPR_CHECK(stripes >= 1);
  }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n, std::size_t stripe = 0) {
    cells_[stripe].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Gauge semantics: overwrite the stripe's value.
  void Set(uint64_t v, std::size_t stripe = 0) {
    cells_[stripe].v.store(v, std::memory_order_relaxed);
  }

  std::size_t stripes() const { return stripes_; }
  uint64_t Value(std::size_t stripe = 0) const {
    return cells_[stripe].v.load(std::memory_order_relaxed);
  }
  uint64_t Total() const {
    uint64_t t = 0;
    for (std::size_t s = 0; s < stripes_; ++s) t += Value(s);
    return t;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::size_t stripes_;
  std::unique_ptr<Cell[]> cells_;
};

/// Registry of named metrics. Registration returns stable raw pointers
/// (deque-backed storage; valid for the registry's lifetime) for the
/// hot paths; export walks the same objects without stopping writers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* RegisterCounter(const std::string& name,
                           std::size_t stripes = 1) {
    return RegisterCell(name, stripes, /*gauge=*/false);
  }
  /// Same storage as a counter; exported under "gauges" and expected to
  /// be written with Set.
  Counter* RegisterGauge(const std::string& name, std::size_t stripes = 1) {
    return RegisterCell(name, stripes, /*gauge=*/true);
  }
  LatencyHistogram* RegisterHistogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    histograms_.emplace_back();
    histograms_.back().name = name;
    return &histograms_.back().hist;
  }

  /// Snapshot of every metric as a JSON object string:
  ///   {"counters": {name: total | {"total": t, "per_stripe": [...]}},
  ///    "gauges": {...},
  ///    "histograms": {name: {"count","overflow","mean_us","min_us",
  ///                          "max_us","p50_us","p90_us","p99_us",
  ///                          "p999_us"}}}
  /// Histogram values are exported in microseconds (recorded in ns).
  std::string ExportJson() const;

 private:
  struct NamedCounter {
    std::string name;
    bool gauge = false;
    std::unique_ptr<Counter> counter;
  };
  struct NamedHistogram {
    std::string name;
    LatencyHistogram hist;
  };

  Counter* RegisterCell(const std::string& name, std::size_t stripes,
                        bool gauge) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.push_back(
        NamedCounter{name, gauge, std::make_unique<Counter>(stripes)});
    return counters_.back().counter.get();
  }

  mutable std::mutex mu_;
  std::deque<NamedCounter> counters_;
  std::deque<NamedHistogram> histograms_;
};

}  // namespace fastppr::obs

#endif  // FASTPPR_OBS_METRICS_H_
