#ifndef FASTPPR_ENGINE_QUERY_SERVICE_H_
#define FASTPPR_ENGINE_QUERY_SERVICE_H_

// Concurrent serving layer over a ShardedEngine (see DESIGN.md
// section 4).
//
// Ranking reads (TopK / Score) are served from epoch-stamped visit-count
// snapshots, double-buffered per shard behind a seqlock: the ingestion
// thread publishes into the inactive buffer and flips a sequence counter
// (release); readers validate the counter around their (relaxed, atomic)
// loads and retry on a concurrent flip. Readers therefore never block
// ingestion and take no lock; ingestion's hot path (the per-event
// repairs) never synchronizes with readers at all — only the O(n)
// publish at each window boundary touches the shared buffers.
//
// Consistency model: every per-shard read is torn-free and stamped with
// the ingestion epoch (windows applied) it was published at. A merged
// read that overlaps a publish may combine shards from two *adjacent*
// epochs (reported via SnapshotInfo); counts within one shard are always
// from a single epoch.
//
// PersonalizedTopK walks the stored segments themselves, which are not
// snapshotted — it serializes with ingestion on the service's window
// mutex (held once per window, never per event).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "fastppr/core/ppr_walker.h"
#include "fastppr/core/ranking.h"
#include "fastppr/core/salsa_walker.h"
#include "fastppr/engine/sharded_engine.h"
#include "fastppr/graph/types.h"
#include "fastppr/util/status.h"

namespace fastppr {

/// Which ingestion epochs a merged snapshot read combined. min_epoch ==
/// max_epoch unless the read overlapped a publish (then they differ by
/// at most the number of windows published during the read).
struct SnapshotInfo {
  uint64_t min_epoch = 0;
  uint64_t max_epoch = 0;
};

/// One shard's double-buffered, epoch-stamped count snapshot (seqlock).
/// Single writer (the ingestion thread), any number of lock-free readers.
class SnapshotBuffer {
 public:
  void Init(std::size_t num_nodes) {
    for (Buf& b : bufs_) {
      b.counts = std::vector<std::atomic<int64_t>>(num_nodes);
    }
  }

  /// Writer only. Fills the inactive buffer and flips to it.
  template <typename CountFn>
  void Publish(std::size_t num_nodes, const CountFn& count, int64_t total,
               uint64_t epoch) {
    const uint64_t w = seq_.load(std::memory_order_relaxed);
    // Orders the previous publish's seq store before this publish's data
    // stores (fence-fence synchronization with the readers' acquire
    // fence): a reader that observes any of the stores below is then
    // guaranteed to observe seq >= w on its re-check and retry. Without
    // this, a weakly-ordered CPU could let a reader validate a buffer
    // two publishes stale.
    std::atomic_thread_fence(std::memory_order_release);
    Buf& b = bufs_[(w + 1) & 1];
    for (std::size_t v = 0; v < num_nodes; ++v) {
      b.counts[v].store(count(v), std::memory_order_relaxed);
    }
    b.total.store(total, std::memory_order_relaxed);
    b.epoch.store(epoch, std::memory_order_relaxed);
    seq_.store(w + 1, std::memory_order_release);
  }

  /// Adds this shard's counts into `acc` and its total into `total`;
  /// returns the snapshot's epoch. Lock-free; a read is copied into
  /// `scratch` (caller-owned, resized here — one allocation per merged
  /// read, not one per shard per retry) and merged only after the
  /// sequence counter validates, so a concurrent publish costs a retry,
  /// never a torn merge.
  uint64_t AccumulateInto(std::vector<int64_t>* acc, int64_t* total,
                          std::vector<int64_t>* scratch) const {
    std::vector<int64_t>& tmp = *scratch;
    tmp.resize(acc->size());
    for (;;) {
      const uint64_t s1 = seq_.load(std::memory_order_acquire);
      const Buf& b = bufs_[s1 & 1];
      for (std::size_t v = 0; v < tmp.size(); ++v) {
        tmp[v] = b.counts[v].load(std::memory_order_relaxed);
      }
      const int64_t t = b.total.load(std::memory_order_relaxed);
      const uint64_t epoch = b.epoch.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) {
        for (std::size_t v = 0; v < tmp.size(); ++v) {
          (*acc)[v] += tmp[v];
        }
        *total += t;
        return epoch;
      }
    }
  }

  /// Single-node read; returns the snapshot's epoch.
  uint64_t ReadOne(NodeId v, int64_t* count, int64_t* total) const {
    for (;;) {
      const uint64_t s1 = seq_.load(std::memory_order_acquire);
      const Buf& b = bufs_[s1 & 1];
      const int64_t c = b.counts[v].load(std::memory_order_relaxed);
      const int64_t t = b.total.load(std::memory_order_relaxed);
      const uint64_t epoch = b.epoch.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) {
        *count = c;
        *total = t;
        return epoch;
      }
    }
  }

 private:
  struct Buf {
    std::vector<std::atomic<int64_t>> counts;
    std::atomic<int64_t> total{0};
    std::atomic<uint64_t> epoch{0};
  };
  Buf bufs_[2];
  std::atomic<uint64_t> seq_{0};
};

/// Serving front door: ingest windows through Ingest(), read rankings
/// concurrently through TopK()/Score(), run personalized queries through
/// PersonalizedTopK(). `Engine` is IncrementalPageRank (TopK/Score rank
/// by PageRank visit counts, PersonalizedTopK is Algorithm 1) or
/// IncrementalSalsa (authority counts / personalized SALSA).
template <typename Engine>
class QueryService {
  static constexpr bool kIsSalsa =
      requires(const Engine& e) { e.AuthorityEstimate(NodeId{0}); };

 public:
  /// Per-query walk statistics type (differs between the two engines).
  using WalkStats =
      std::conditional_t<kIsSalsa, SalsaWalkResult, PersonalizedWalkResult>;

  explicit QueryService(ShardedEngine<Engine>* engine) : engine_(engine) {
    FASTPPR_CHECK(engine_ != nullptr);
    snapshots_ = std::vector<SnapshotBuffer>(engine_->num_shards());
    for (SnapshotBuffer& s : snapshots_) s.Init(engine_->num_nodes());
    std::lock_guard<std::mutex> lock(window_mu_);
    PublishLocked();
  }

  ShardedEngine<Engine>* engine() { return engine_; }

  /// Applies one ingestion window and publishes fresh snapshots. On a
  /// failed event the applied prefix is still repaired and published.
  Status Ingest(std::span<const EdgeEvent> window) {
    std::lock_guard<std::mutex> lock(window_mu_);
    Status s = engine_->ApplyEvents(window);
    PublishLocked();
    return s;
  }

  /// Re-publishes snapshots of the engine's current state (for callers
  /// that mutated the engine directly).
  void Publish() {
    std::lock_guard<std::mutex> lock(window_mu_);
    PublishLocked();
  }

  /// Epoch of the most recent publish (= windows applied at that point).
  uint64_t published_epoch() const {
    return published_epoch_.load(std::memory_order_acquire);
  }

  /// Merged per-node counts from the current snapshots. Lock-free.
  std::vector<int64_t> SnapshotCounts(int64_t* total = nullptr,
                                      SnapshotInfo* info = nullptr) const {
    std::vector<int64_t> acc(engine_->num_nodes(), 0);
    std::vector<int64_t> scratch;
    int64_t t = 0;
    SnapshotInfo si;
    si.min_epoch = ~uint64_t{0};
    for (const SnapshotBuffer& snap : snapshots_) {
      const uint64_t e = snap.AccumulateInto(&acc, &t, &scratch);
      si.min_epoch = std::min(si.min_epoch, e);
      si.max_epoch = std::max(si.max_epoch, e);
    }
    if (total != nullptr) *total = t;
    if (info != nullptr) *info = si;
    return acc;
  }

  /// Nodes with the k highest snapshot counts (the shared TopKByCount
  /// ranking — identical ordering to the engines' TopK). Lock-free.
  std::vector<NodeId> TopK(std::size_t k,
                           SnapshotInfo* info = nullptr) const {
    return TopKByCount(SnapshotCounts(nullptr, info), k);
  }

  /// Normalized snapshot score of one node (PageRank visit frequency /
  /// SALSA authority frequency). Lock-free.
  double Score(NodeId v, SnapshotInfo* info = nullptr) const {
    int64_t count = 0;
    int64_t total = 0;
    SnapshotInfo si;
    si.min_epoch = ~uint64_t{0};
    for (const SnapshotBuffer& snap : snapshots_) {
      int64_t c = 0;
      int64_t t = 0;
      const uint64_t e = snap.ReadOne(v, &c, &t);
      count += c;
      total += t;
      si.min_epoch = std::min(si.min_epoch, e);
      si.max_epoch = std::max(si.max_epoch, e);
    }
    if (info != nullptr) *info = si;
    return total == 0 ? 0.0
                      : static_cast<double>(count) /
                            static_cast<double>(total);
  }

  /// Personalized top-k (Algorithm 1 stitched walk; authority-ranked for
  /// SALSA). Stored segments are walked in place, not snapshotted, so
  /// this serializes with ingestion on the window mutex.
  Status PersonalizedTopK(NodeId seed, std::size_t k, uint64_t length,
                          bool exclude_friends, uint64_t rng_seed,
                          std::vector<ScoredNode>* ranked,
                          WalkStats* walk_stats = nullptr) {
    std::lock_guard<std::mutex> lock(window_mu_);
    const SegmentView view(engine_);
    SocialStore* social = &engine_->social_store();
    if constexpr (kIsSalsa) {
      BasicPersonalizedSalsaWalker<SegmentView> walker(&view, social);
      return walker.TopKAuthorities(seed, k, length, exclude_friends,
                                    rng_seed, ranked, walk_stats);
    } else {
      BasicPersonalizedPageRankWalker<SegmentView> walker(&view, social);
      return walker.TopK(seed, k, length, exclude_friends, rng_seed,
                         ranked, walk_stats);
    }
  }

 private:
  /// Store view routing each node's stored segments to its owning shard
  /// (segment ids are global, so the lookup is a plain forward).
  class SegmentView {
   public:
    explicit SegmentView(const ShardedEngine<Engine>* engine)
        : engine_(engine) {}
    std::size_t walks_per_node() const {
      return engine_->shard(0).walk_store().walks_per_node();
    }
    double epsilon() const {
      return engine_->shard(0).walk_store().epsilon();
    }
    auto GetSegment(NodeId u, std::size_t k) const {
      return engine_->shard(engine_->shard_of(u))
          .walk_store()
          .GetSegment(u, k);
    }

   private:
    const ShardedEngine<Engine>* engine_;
  };

  void PublishLocked() {
    const uint64_t epoch = engine_->windows_applied();
    const std::size_t n = engine_->num_nodes();
    for (std::size_t s = 0; s < snapshots_.size(); ++s) {
      const Engine& shard = engine_->shard(s);
      snapshots_[s].Publish(
          n, [&shard](std::size_t v) {
            return shard.RankingCount(static_cast<NodeId>(v));
          },
          shard.RankingTotal(), epoch);
    }
    published_epoch_.store(epoch, std::memory_order_release);
  }

  ShardedEngine<Engine>* engine_;
  std::vector<SnapshotBuffer> snapshots_;
  std::mutex window_mu_;
  std::atomic<uint64_t> published_epoch_{0};
};

}  // namespace fastppr

#endif  // FASTPPR_ENGINE_QUERY_SERVICE_H_
