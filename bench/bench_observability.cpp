// Observability layer cost + the serving/phase baseline it exposes
// (DESIGN.md §9).
//
//   * metrics_overhead_pct — quiescent ingest slowdown with metrics hot
//                            vs the same engine with metrics disabled
//                            (contract: <= 2%, asserted here and grepped
//                            in CI);
//   * {topk,score,personalized}_{p50,p99,p999}_us — per-query-class
//                            service latency percentiles from the
//                            engine's lock-free LatencyHistograms;
//   * util_{ingest,repair,publish} — per-phase utilization fractions
//                            derived from the PhaseTracer's epoch-
//                            stamped span timeline (the honest baseline
//                            a pipelined ingest restructure must beat);
//   * results/trace_observability.json — the same timeline as a
//                            chrome://tracing / Perfetto-loadable file.
//
//   bench_observability [--smoke] [--json <path>]
//
// --smoke shrinks the stream to CI size so the report path (and the
// overhead guard) is exercised on every push.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fastppr/core/incremental_pagerank.h"
#include "fastppr/engine/query_service.h"
#include "fastppr/engine/sharded_engine.h"
#include "fastppr/graph/generators.h"
#include "fastppr/obs/latency_histogram.h"
#include "fastppr/obs/phase_tracer.h"
#include "fastppr/util/check.h"
#include "fastppr/util/table_printer.h"

using namespace fastppr;
using namespace fastppr::bench;

namespace {

using PrEngine = ShardedEngine<IncrementalPageRank>;
using PrService = QueryService<IncrementalPageRank>;

std::vector<EdgeEvent> PowerLawEvents(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  PreferentialAttachmentOptions gen;
  gen.num_nodes = n;
  gen.out_per_node = 10;
  auto edges = PreferentialAttachment(gen, &rng);
  rng.Shuffle(&edges);
  std::vector<EdgeEvent> events;
  events.reserve(edges.size());
  for (const Edge& e : edges) {
    events.push_back(EdgeEvent{EdgeEvent::Kind::kInsert, e});
  }
  return events;
}

void AddHistogramKeys(JsonReport* report, const std::string& prefix,
                      const obs::LatencyHistogram& h) {
  const auto s = h.Summarize();
  report->Add(prefix + "_p50_us", static_cast<double>(s.p50_ns) / 1e3);
  report->Add(prefix + "_p99_us", static_cast<double>(s.p99_ns) / 1e3);
  report->Add(prefix + "_p999_us", static_cast<double>(s.p999_ns) / 1e3);
  report->Add(prefix + "_mean_us", s.mean_ns / 1e3);
  report->Add(prefix + "_count", static_cast<double>(s.count));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  Banner("Observability: metrics overhead, query-class latency "
         "percentiles, phase utilization",
         "the per-update cost model of Bahmani et al., VLDB 2010 "
         "(Theorem 1), measured per phase and per percentile");

  const std::size_t n = smoke ? 2000 : 20000;
  const std::size_t R = 5;
  const double eps = 0.2;
  const std::size_t window = smoke ? 512 : 4096;
  const std::size_t S = 4;
  const int reps = smoke ? 5 : 3;

  const auto events = PowerLawEvents(n, 77);
  std::printf("power-law stream: n=%zu, m=%zu insertions, R=%zu, "
              "eps=%.2f, window=%zu, shards=%zu%s\n\n",
              n, events.size(), R, eps, window, S,
              smoke ? " (smoke)" : "");

  MonteCarloOptions mc;
  mc.walks_per_node = R;
  mc.epsilon = eps;
  mc.seed = 90;
  const ShardedOptions sharding{S, S};

  JsonReport report("observability");
  report.Add("num_nodes", static_cast<double>(n));
  report.Add("num_events", static_cast<double>(events.size()));
  report.Add("window", static_cast<double>(window));
  report.Add("num_shards", static_cast<double>(S));
  report.Add("smoke", smoke ? 1.0 : 0.0);

  // --- Part 1: the overhead contract. Identical engine-only ingest
  // with metrics cold vs hot; determinism makes every rep bit-identical,
  // so best-of-N on both sides isolates the instrumentation cost from
  // box noise.
  const double cold_eps_sec = BestOfN(reps, [&] {
    PrEngine engine(n, mc, sharding);
    engine.SetMetricsEnabled(false);
    return TimeWindows(events, window, [&](std::span<const EdgeEvent> w) {
      return engine.ApplyEvents(w);
    });
  });
  const double hot_eps_sec = BestOfN(reps, [&] {
    PrEngine engine(n, mc, sharding);  // metrics on by default
    return TimeWindows(events, window, [&](std::span<const EdgeEvent> w) {
      return engine.ApplyEvents(w);
    });
  });
  const double metrics_overhead_pct =
      100.0 * (cold_eps_sec - hot_eps_sec) / cold_eps_sec;
  std::printf("ingest metrics-cold: %.0f events/sec\n", cold_eps_sec);
  std::printf("ingest metrics-hot:  %.0f events/sec  (overhead %.2f%%)\n\n",
              hot_eps_sec, metrics_overhead_pct);
  // The tentpole contract: always-on metrics must cost < 2% of ingest.
  FASTPPR_CHECK_MSG(metrics_overhead_pct <= 2.0,
                    "observability overhead exceeds the 2% budget");

  // --- Part 2: the serving baseline. One engine + service ingests the
  // stream (a personalized read every 4th window keeps the frozen
  // publish path exercised), then each query class runs a closed loop;
  // every latency lands in the engine's always-on histograms.
  auto engine = std::make_unique<PrEngine>(n, mc, sharding);
  auto service = std::make_unique<PrService>(engine.get());
  const obs::EngineMetrics& om = engine->metric_handles();

  std::size_t windows_fed = 0;
  const double serving_eps_sec =
      TimeWindows(events, window, [&](std::span<const EdgeEvent> w) {
        if (windows_fed++ % 4 == 0) {
          std::vector<ScoredNode> ranked;
          SnapshotInfo info;
          FASTPPR_CHECK(service
                            ->PersonalizedTopK(
                                static_cast<NodeId>((windows_fed * 131) % n),
                                10, 2000, /*exclude_friends=*/true,
                                /*rng_seed=*/windows_fed, &ranked, nullptr,
                                &info)
                            .ok());
          FASTPPR_CHECK(info.min_epoch == info.max_epoch);
        }
        return service->Ingest(w);
      });
  // Drain the pipeline + publisher before reading histograms and the
  // phase timeline: the tail windows' repair/publish spans land on the
  // pipeline threads after Ingest acks.
  service->Quiesce();
  report.Add("serving_events_per_sec", serving_eps_sec);

  const std::size_t topk_queries = smoke ? 200 : 1000;
  const std::size_t score_queries = smoke ? 20000 : 100000;
  const std::size_t personalized_queries = smoke ? 100 : 1000;

  ReadScratch scratch;
  for (std::size_t q = 0; q < topk_queries; ++q) {
    FASTPPR_CHECK(!service->TopKInto(10, &scratch).empty());
  }
  double sink = 0.0;
  for (std::size_t q = 0; q < score_queries; ++q) {
    sink += service->Score(static_cast<NodeId>((q * 97) % n));
  }
  FASTPPR_CHECK(sink >= 0.0);  // keep the loop observable
  for (std::size_t q = 0; q < personalized_queries; ++q) {
    std::vector<ScoredNode> ranked;
    SnapshotInfo info;
    FASTPPR_CHECK(service
                      ->PersonalizedTopK(static_cast<NodeId>((q * 97) % n),
                                         10, 2000, /*exclude_friends=*/true,
                                         /*rng_seed=*/q, &ranked, nullptr,
                                         &info)
                      .ok());
    FASTPPR_CHECK(info.min_epoch == info.max_epoch);
  }

  AddHistogramKeys(&report, "topk", *om.query_topk);
  AddHistogramKeys(&report, "score", *om.query_score);
  AddHistogramKeys(&report, "personalized", *om.query_personalized);
  AddHistogramKeys(&report, "ingest_window", *om.ingest_window);
  AddHistogramKeys(&report, "publish", *om.publish_phase);

  // --- Part 3: per-phase utilization over the serving run's timeline.
  // Ingest busy time lands on two tracks in the (default) pipelined
  // mode — the caller mutating the primary and the pipeline thread
  // advancing the repair replica — so it normalizes by 2; repair has S
  // executor lanes; publish is the single publisher thread.
  const auto totals = engine->phase_tracer()->ComputeTotals();
  const double util_ingest = totals.Utilization(obs::Phase::kIngest, 2.0);
  const double util_repair =
      totals.Utilization(obs::Phase::kRepair, static_cast<double>(S));
  const double util_publish = totals.Utilization(obs::Phase::kPublish);
  report.Add("util_ingest", util_ingest);
  report.Add("util_repair", util_repair);
  report.Add("util_publish", util_publish);
  report.Add("metrics_overhead_pct", metrics_overhead_pct);
  report.Add("cold_events_per_sec", cold_eps_sec);
  report.Add("hot_events_per_sec", hot_eps_sec);

  const std::string trace_path =
      ResultsDir() + "/trace_observability.json";
  const Status trace_status =
      engine->phase_tracer()->WriteChromeTrace(trace_path);
  if (!trace_status.ok()) {
    std::fprintf(stderr, "warning: %s\n",
                 trace_status.ToString().c_str());
  } else {
    std::printf("wrote %s\n", trace_path.c_str());
  }
  // The registry's own export (counters + gauges + histogram summaries)
  // rides along as a machine-readable artifact.
  {
    const std::string metrics_path =
        ResultsDir() + "/metrics_observability.json";
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f != nullptr) {
      const std::string json = engine->metrics()->ExportJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", metrics_path.c_str());
    }
  }

  const auto topk_sum = om.query_topk->Summarize();
  const auto score_sum = om.query_score->Summarize();
  const auto pers_sum = om.query_personalized->Summarize();
  TablePrinter table({"metric", "value"});
  table.AddRow({"metrics overhead %",
                TablePrinter::Fmt(metrics_overhead_pct, 2)});
  table.AddRow({"TopK p50/p99/p999 us",
                TablePrinter::Fmt(static_cast<double>(topk_sum.p50_ns) / 1e3,
                                  1) +
                    " / " +
                    TablePrinter::Fmt(
                        static_cast<double>(topk_sum.p99_ns) / 1e3, 1) +
                    " / " +
                    TablePrinter::Fmt(
                        static_cast<double>(topk_sum.p999_ns) / 1e3, 1)});
  table.AddRow(
      {"Score p50/p99/p999 us",
       TablePrinter::Fmt(static_cast<double>(score_sum.p50_ns) / 1e3, 2) +
           " / " +
           TablePrinter::Fmt(static_cast<double>(score_sum.p99_ns) / 1e3,
                             2) +
           " / " +
           TablePrinter::Fmt(static_cast<double>(score_sum.p999_ns) / 1e3,
                             2)});
  table.AddRow(
      {"Personalized p50/p99/p999 us",
       TablePrinter::Fmt(static_cast<double>(pers_sum.p50_ns) / 1e3, 1) +
           " / " +
           TablePrinter::Fmt(static_cast<double>(pers_sum.p99_ns) / 1e3,
                             1) +
           " / " +
           TablePrinter::Fmt(static_cast<double>(pers_sum.p999_ns) / 1e3,
                             1)});
  table.AddRow({"util ingest", TablePrinter::Fmt(util_ingest, 3)});
  table.AddRow({"util repair (/S)", TablePrinter::Fmt(util_repair, 3)});
  table.AddRow({"util publish", TablePrinter::Fmt(util_publish, 3)});
  table.Print();

  report.WriteTo(JsonPathFromArgs(
      argc, argv, ResultsDir() + "/BENCH_observability.json"));
  return 0;
}
