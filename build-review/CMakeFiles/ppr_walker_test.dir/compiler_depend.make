# Empty compiler generated dependencies file for ppr_walker_test.
# This may be replaced when dependencies are built.
