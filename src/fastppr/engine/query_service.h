#ifndef FASTPPR_ENGINE_QUERY_SERVICE_H_
#define FASTPPR_ENGINE_QUERY_SERVICE_H_

// Concurrent serving layer over a ShardedEngine (see DESIGN.md
// sections 4, 6 and 11).
//
// Ranking reads (TopK / Score) are served from epoch-stamped visit-count
// snapshots, double-buffered per shard behind a seqlock: the boundary
// thread publishes into the inactive buffer and flips a sequence counter
// (release); readers validate the counter around their (relaxed, atomic)
// loads and retry on a concurrent flip. Readers therefore never block
// ingestion and take no lock; ingestion's hot path (the per-event
// repairs) never synchronizes with readers at all — only the publish at
// each window boundary touches the shared buffers.
//
// Personalized reads (PersonalizedTopK) are served from *frozen
// segment-snapshot views* (store/segment_snapshot.h): structurally
// shared immutable copies of each shard's walk segments plus the
// adjacency, flipped as one pointer table under the view mutex. A
// reader pins the whole table with one shared_ptr copy (mutex held only
// across the pointer copy, never across a walk) and stitches its walk
// with plain loads. Each publish allocates only the window's delta;
// clean chunks are shared with the previous view and freed by their
// refcounts when the last pin drops.
//
// Publish pipelining: the service implements the engine's BoundarySink,
// so snapshot publishing is driven by window-boundary callbacks instead
// of the Ingest caller. In pipelined engine mode the callback runs on
// the pipeline thread; it captures the boundary-frozen state (counts +
// delta payloads) and hands assembly to a dedicated PUBLISHER thread —
// publish of window k-1 overlaps repair of window k and ingest of
// window k+1. In lockstep mode the callback runs inline on the caller
// and frozen refreshes stay demand-gated (a writer with no personalized
// readers skips them).
//
// Consistency model:
//  * Merged count reads: every per-shard read is torn-free and stamped
//    with the ingestion epoch (windows applied) it was published at; a
//    merged read overlapping a publish may combine shards from two
//    *adjacent* epochs (reported via SnapshotInfo).
//  * Personalized reads: the segment views and the adjacency view are
//    flipped together, so one walk observes ONE epoch throughout
//    (SnapshotInfo reports min_epoch == max_epoch). Reads lag live
//    ingestion by at most the pipeline depth (lockstep: the in-flight
//    window); Quiesce() is the freshness barrier.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "fastppr/core/ppr_walker.h"
#include "fastppr/core/ranking.h"
#include "fastppr/core/salsa_walker.h"
#include "fastppr/engine/ingest_pipeline.h"
#include "fastppr/engine/sharded_engine.h"
#include "fastppr/graph/types.h"
#include "fastppr/obs/engine_metrics.h"
#include "fastppr/obs/latency_histogram.h"
#include "fastppr/store/segment_snapshot.h"
#include "fastppr/store/shared_snapshot.h"
#include "fastppr/util/shard.h"
#include "fastppr/util/status.h"

namespace fastppr {

/// Which ingestion epochs a read combined. min_epoch == max_epoch unless
/// a merged count read overlapped a publish (then they differ by at most
/// the number of windows published during the read). Personalized reads
/// are single-epoch by construction.
struct SnapshotInfo {
  uint64_t min_epoch = 0;
  uint64_t max_epoch = 0;
};

/// Caller-owned scratch for allocation-free steady-state merged reads
/// (one ReadScratch per reader thread; reused across queries).
struct ReadScratch {
  std::vector<int64_t> counts;     ///< merged per-node counts
  std::vector<int64_t> shard_tmp;  ///< one shard's seqlock copy
  std::vector<NodeId> ranked;      ///< TopKInto output
};

/// One shard's double-buffered, epoch-stamped count snapshot (seqlock).
/// Single writer (the window-boundary thread), any number of lock-free
/// readers.
class SnapshotBuffer {
 public:
  void Init(std::size_t num_nodes) {
    for (Buf& b : bufs_) {
      b.counts = std::vector<std::atomic<int64_t>>(num_nodes);
    }
  }

  /// Writer only. Fills the inactive buffer and flips to it. The buffer
  /// size is pinned at Init: a future growable-node engine must rebuild
  /// the service instead of publishing out of bounds.
  template <typename CountFn>
  void Publish(std::size_t num_nodes, const CountFn& count, int64_t total,
               uint64_t epoch) {
    const uint64_t w = seq_.load(std::memory_order_relaxed);
    // Orders the previous publish's seq store before this publish's data
    // stores (fence-fence synchronization with the readers' acquire
    // fence): a reader that observes any of the stores below is then
    // guaranteed to observe seq >= w on its re-check and retry. Without
    // this, a weakly-ordered CPU could let a reader validate a buffer
    // two publishes stale.
    std::atomic_thread_fence(std::memory_order_release);
    Buf& b = bufs_[(w + 1) & 1];
    FASTPPR_CHECK_MSG(b.counts.size() == num_nodes,
                      "count snapshot buffer no longer matches "
                      "num_nodes — rebuild the QueryService after "
                      "growing the engine");
    for (std::size_t v = 0; v < num_nodes; ++v) {
      b.counts[v].store(count(v), std::memory_order_relaxed);
    }
    b.total.store(total, std::memory_order_relaxed);
    b.epoch.store(epoch, std::memory_order_relaxed);
    seq_.store(w + 1, std::memory_order_release);
  }

  /// Adds this shard's counts into `acc` and its total into `total`;
  /// returns the snapshot's epoch. Lock-free; a read is copied into
  /// `scratch` (caller-owned, resized here — at most one allocation per
  /// scratch lifetime, not one per shard per retry) and merged only
  /// after the sequence counter validates, so a concurrent publish costs
  /// a retry, never a torn merge.
  uint64_t AccumulateInto(std::vector<int64_t>* acc, int64_t* total,
                          std::vector<int64_t>* scratch) const {
    std::vector<int64_t>& tmp = *scratch;
    tmp.resize(acc->size());
    for (;;) {
      const uint64_t s1 = seq_.load(std::memory_order_acquire);
      const Buf& b = bufs_[s1 & 1];
      for (std::size_t v = 0; v < tmp.size(); ++v) {
        tmp[v] = b.counts[v].load(std::memory_order_relaxed);
      }
      const int64_t t = b.total.load(std::memory_order_relaxed);
      const uint64_t epoch = b.epoch.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) {
        for (std::size_t v = 0; v < tmp.size(); ++v) {
          (*acc)[v] += tmp[v];
        }
        *total += t;
        return epoch;
      }
    }
  }

  /// Single-node read; returns the snapshot's epoch.
  uint64_t ReadOne(NodeId v, int64_t* count, int64_t* total) const {
    for (;;) {
      const uint64_t s1 = seq_.load(std::memory_order_acquire);
      const Buf& b = bufs_[s1 & 1];
      const int64_t c = b.counts[v].load(std::memory_order_relaxed);
      const int64_t t = b.total.load(std::memory_order_relaxed);
      const uint64_t epoch = b.epoch.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) {
        *count = c;
        *total = t;
        return epoch;
      }
    }
  }

 private:
  struct Buf {
    std::vector<std::atomic<int64_t>> counts;
    std::atomic<int64_t> total{0};
    std::atomic<uint64_t> epoch{0};
  };
  Buf bufs_[2];
  std::atomic<uint64_t> seq_{0};
};

/// Serving front door: ingest windows through Ingest(), read rankings
/// concurrently through TopK()/Score(), run personalized queries
/// concurrently through PersonalizedTopK(). `Engine` is
/// IncrementalPageRank (TopK/Score rank by PageRank visit counts,
/// PersonalizedTopK is Algorithm 1) or IncrementalSalsa (authority
/// counts / personalized SALSA).
///
/// Single-service contract: a QueryService owns its engine's snapshot
/// delta feeds (dirty segments, applied edges) and its window-boundary
/// sink; attach at most one service per engine, and route mutations
/// through Ingest() — callers that mutate the engine directly must call
/// Publish() (full snapshot rebuild) before the next read.
template <typename Engine>
class QueryService : private ShardedEngine<Engine>::BoundarySink {
  static constexpr bool kIsSalsa =
      requires(const Engine& e) { e.AuthorityEstimate(NodeId{0}); };
  using Ctx = typename ShardedEngine<Engine>::BoundaryContext;
  /// Boundary→publisher queue depth (pipelined engine mode): how many
  /// captured-but-unassembled windows may stack up before window
  /// boundaries backpressure on the publisher.
  static constexpr std::size_t kPublishQueueCap = 4;

 public:
  /// Per-query walk statistics type (differs between the two engines).
  using WalkStats =
      std::conditional_t<kIsSalsa, SalsaWalkResult, PersonalizedWalkResult>;

  explicit QueryService(ShardedEngine<Engine>* engine)
      : engine_(engine), adj_builder_(/*capture_in=*/kIsSalsa) {
    FASTPPR_CHECK(engine_ != nullptr);
    om_ = engine_->metric_handles();
    engine_->EnableAppliedEdgeTracking();
    for (std::size_t s = 0; s < engine_->num_shards(); ++s) {
      engine_->shard(s).mutable_walk_store()->set_dirty_tracking(true);
    }
    const auto& store = engine_->shard(0).walk_store();
    walks_per_node_ = store.walks_per_node();
    epsilon_ = store.epsilon();
    snapshots_ = std::vector<SnapshotBuffer>(engine_->num_shards());
    for (SnapshotBuffer& s : snapshots_) s.Init(engine_->num_nodes());
    // The dense global->local segment map (immutable for the service's
    // lifetime; shared by the per-shard builders and every reader).
    ownership_ = engine_->MakeSegmentOwnership();
    seg_builders_.reserve(engine_->num_shards());
    for (std::size_t s = 0; s < engine_->num_shards(); ++s) {
      seg_builders_.emplace_back(ownership_, s);
    }
    if (!engine_->lockstep()) {
      publisher_ = std::thread([this] { PublisherLoop(); });
    }
    engine_->SetBoundarySink(this);
    {
      std::lock_guard<std::mutex> lock(window_mu_);
      const Ctx ctx = engine_->QuiescentBoundaryContext();
      PublishBoundary(ctx, /*full=*/true);
    }
    // The ctor returns with a published view in place (readers CHECK
    // one exists).
    WaitPublisherIdle();
  }

  /// The engine outlives the service: detach the boundary sink and hand
  /// the delta feeds back so it stops paying for a serving layer that
  /// no longer exists.
  ~QueryService() override {
    Quiesce();
    engine_->SetBoundarySink(nullptr);
    publish_q_.Close();
    if (publisher_.joinable()) publisher_.join();
    engine_->DisableAppliedEdgeTracking();
    for (std::size_t s = 0; s < engine_->num_shards(); ++s) {
      auto* store = engine_->shard(s).mutable_walk_store();
      store->set_dirty_tracking(false);
      store->ClearDirtySegments();
    }
  }

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  ShardedEngine<Engine>* engine() { return engine_; }

  /// Applies one ingestion window; snapshots publish at the window
  /// boundary (inline in lockstep, downstream of the pipeline
  /// otherwise). On a failed event the applied prefix is still
  /// repaired and published.
  Status Ingest(std::span<const EdgeEvent> window) {
    std::lock_guard<std::mutex> lock(window_mu_);
    return engine_->ApplyEvents(window);
  }

  /// Re-publishes snapshots of the engine's current state (for callers
  /// that mutated the engine directly — the delta feeds may have missed
  /// those mutations, so the frozen views are fully rebuilt). Blocks
  /// until the rebuilt view is live.
  void Publish() {
    std::lock_guard<std::mutex> lock(window_mu_);
    const Ctx ctx = engine_->QuiescentBoundaryContext();
    PublishBoundary(ctx, /*full=*/true);
    WaitPublisherIdle();
  }

  /// The freshness barrier: blocks until every window submitted through
  /// Ingest() is fully applied AND its snapshot publishes are live.
  /// No-op cost in lockstep mode. (Differential tests compare states
  /// across engines at quiesced boundaries.)
  void Quiesce() {
    engine_->Drain();
    WaitPublisherIdle();
  }

  /// Epoch of the most recent window boundary's count publish (frozen
  /// views may trail by the publish queue depth in pipelined mode).
  uint64_t published_epoch() const {
    return published_epoch_.load(std::memory_order_acquire);
  }

  /// Aggregate structural-sharing publish accounting across every
  /// builder (all shards' segments + both adjacency sides). Read at a
  /// quiescent point (Quiesce()) for a consistent total;
  /// publish_delta_bytes() / presented_bytes is the
  /// publish_bytes_per_delta_byte contract bench_sharded enforces.
  snap::SharedPublishStats::Snapshot publish_volume() const {
    snap::SharedPublishStats::Snapshot total;
    for (const SegmentSnapshotBuilder& b : seg_builders_) {
      total.Accumulate(b.stats().Read());
    }
    total.Accumulate(adj_builder_.out_stats().Read());
    if (adj_builder_.capture_in()) {
      total.Accumulate(adj_builder_.in_stats().Read());
    }
    return total;
  }

  /// Memory accounting of the currently published frozen views (pins
  /// the view set briefly; safe concurrently with ingestion).
  /// `segment_rows_dense` sums every shard's owned rows — exactly one
  /// global table's worth across all shards; `segment_rows_global_model`
  /// is what the pre-dense layout carried (n * spn rows PER shard).
  struct FrozenViewStats {
    std::size_t segment_bytes = 0;           ///< all shards, current view
    std::size_t segment_row_table_bytes = 0;
    std::size_t segment_rows_dense = 0;
    std::size_t segment_rows_global_model = 0;
    std::size_t max_shard_segment_bytes = 0;
    std::size_t adjacency_bytes = 0;
  };
  FrozenViewStats FrozenStats() const {
    std::shared_ptr<const FrozenViewSet> pin;
    {
      std::lock_guard<std::mutex> lock(view_mu_);
      pin = frozen_view_;
    }
    FrozenViewStats out;
    if (pin != nullptr) {
      const std::size_t spn = pin->ownership->segments_per_node();
      for (const auto& segs : pin->segments) {
        out.segment_bytes += segs->MemoryBytes();
        out.segment_row_table_bytes += segs->row_table_bytes();
        out.segment_rows_dense += segs->num_segments();
        out.segment_rows_global_model += engine_->num_nodes() * spn;
        out.max_shard_segment_bytes =
            std::max(out.max_shard_segment_bytes, segs->MemoryBytes());
      }
      if (pin->graph != nullptr) {
        out.adjacency_bytes = pin->graph->MemoryBytes();
      }
    }
    // Drop the pin under the view mutex (the unpin contract).
    std::lock_guard<std::mutex> lock(view_mu_);
    pin.reset();
    return out;
  }

  /// Merged per-node counts from the current snapshots into
  /// caller-owned scratch (allocation-free once the scratch is warm).
  /// Returns a reference to scratch->counts. Lock-free.
  const std::vector<int64_t>& SnapshotCountsInto(
      ReadScratch* scratch, int64_t* total = nullptr,
      SnapshotInfo* info = nullptr) const {
    scratch->counts.assign(engine_->num_nodes(), 0);
    int64_t t = 0;
    SnapshotInfo si;
    si.min_epoch = ~uint64_t{0};
    for (const SnapshotBuffer& snap : snapshots_) {
      const uint64_t e =
          snap.AccumulateInto(&scratch->counts, &t, &scratch->shard_tmp);
      si.min_epoch = std::min(si.min_epoch, e);
      si.max_epoch = std::max(si.max_epoch, e);
    }
    if (total != nullptr) *total = t;
    if (info != nullptr) *info = si;
    return scratch->counts;
  }

  /// Allocating convenience wrapper around SnapshotCountsInto.
  std::vector<int64_t> SnapshotCounts(int64_t* total = nullptr,
                                      SnapshotInfo* info = nullptr) const {
    ReadScratch scratch;
    SnapshotCountsInto(&scratch, total, info);
    return std::move(scratch.counts);
  }

  /// Nodes with the k highest snapshot counts (the shared TopKByCount
  /// ranking — identical ordering to the engines' TopK), built in
  /// caller-owned scratch: the steady-state read path allocates nothing.
  /// Returns a reference to scratch->ranked. Lock-free.
  const std::vector<NodeId>& TopKInto(std::size_t k, ReadScratch* scratch,
                                      SnapshotInfo* info = nullptr) const {
    const bool hot = engine_->metrics_enabled();
    const uint64_t t0 = hot ? obs::NowNanos() : 0;
    SnapshotCountsInto(scratch, nullptr, info);
    TopKByCountInto(scratch->counts, k, &scratch->ranked);
    if (hot) om_.query_topk->Record(obs::NowNanos() - t0);
    return scratch->ranked;
  }

  /// Allocating convenience wrapper around TopKInto.
  std::vector<NodeId> TopK(std::size_t k,
                           SnapshotInfo* info = nullptr) const {
    ReadScratch scratch;
    TopKInto(k, &scratch, info);
    return std::move(scratch.ranked);
  }

  /// Normalized snapshot score of one node (PageRank visit frequency /
  /// SALSA authority frequency). Lock-free and allocation-free.
  double Score(NodeId v, SnapshotInfo* info = nullptr) const {
    const bool hot = engine_->metrics_enabled();
    const uint64_t t0 = hot ? obs::NowNanos() : 0;
    int64_t count = 0;
    int64_t total = 0;
    SnapshotInfo si;
    si.min_epoch = ~uint64_t{0};
    for (const SnapshotBuffer& snap : snapshots_) {
      int64_t c = 0;
      int64_t t = 0;
      const uint64_t e = snap.ReadOne(v, &c, &t);
      count += c;
      total += t;
      si.min_epoch = std::min(si.min_epoch, e);
      si.max_epoch = std::max(si.max_epoch, e);
    }
    if (info != nullptr) *info = si;
    if (hot) om_.query_score->Record(obs::NowNanos() - t0);
    return total == 0 ? 0.0
                      : static_cast<double>(count) /
                            static_cast<double>(total);
  }

  /// Personalized top-k (Algorithm 1 stitched walk; authority-ranked for
  /// SALSA), served from the frozen segment + adjacency views published
  /// at a window boundary. Runs concurrently with ingestion: the view
  /// mutex is held only across the shared_ptr pins, never across the
  /// walk, so readers never stall the writer and vice versa. The whole
  /// walk observes one epoch (`info`: min_epoch == max_epoch).
  Status PersonalizedTopK(NodeId seed, std::size_t k, uint64_t length,
                          bool exclude_friends, uint64_t rng_seed,
                          std::vector<ScoredNode>* ranked,
                          WalkStats* walk_stats = nullptr,
                          SnapshotInfo* info = nullptr) {
    return PersonalizedTopK(seed, k, length, exclude_friends, rng_seed,
                            WalkerOptions(), ranked, walk_stats, info);
  }

  /// PersonalizedTopK with explicit walker options — the serving tier's
  /// entry point: `options.deadline` is polled inside the walk
  /// accumulation loop (cooperative cancellation), so an expired
  /// request returns DeadlineExceeded instead of burning walk budget;
  /// `options.max_fetches` remains the fetch-budget fault hook.
  Status PersonalizedTopK(NodeId seed, std::size_t k, uint64_t length,
                          bool exclude_friends, uint64_t rng_seed,
                          const WalkerOptions& options,
                          std::vector<ScoredNode>* ranked,
                          WalkStats* walk_stats = nullptr,
                          SnapshotInfo* info = nullptr) {
    // Fail fast before pinning views or arming a frozen refresh: a
    // request that is already dead must cost the service nothing.
    if (options.deadline.expired()) {
      return Status::DeadlineExceeded("deadline expired before walk start");
    }
    const bool hot = engine_->metrics_enabled();
    const uint64_t t0 = hot ? obs::NowNanos() : 0;
    if (hot) om_.snapshot_pins->Add(1, engine_->shard_of(seed));
    // Arm the next window boundary's frozen refresh (lockstep's demand
    // gate; pipelined publishes unconditionally, so the flag is inert).
    frozen_demand_.store(true, std::memory_order_relaxed);
    std::shared_ptr<const FrozenViewSet> pin;
    {
      std::lock_guard<std::mutex> lock(view_mu_);
      pin = frozen_view_;
    }
    FASTPPR_CHECK_MSG(pin != nullptr && pin->graph != nullptr,
                      "no published snapshot to serve from");
    if (engine_->lockstep() && pin->graph->epoch() != published_epoch() &&
        window_mu_.try_lock()) {
      // Lockstep only: the view lags the engine (frozen publishes were
      // skipped while no personalized reads were in flight) and the
      // writer is idle, so this reader pays the refresh itself, then
      // re-pins — holding the window mutex across the rebuild, so a
      // writer arriving exactly now waits for it (the one
      // reader-stalls-writer exception; it needs an idle writer to
      // trigger, so it cannot recur under steady ingestion). If the
      // writer is mid-window instead, the stale view is served as-is
      // (stamped in `info`) and the demand flag freshens the next
      // boundary. The pipelined mode never takes this branch: views
      // refresh at every boundary, and transient lag is just the
      // pipeline depth.
      std::lock_guard<std::mutex> lock(window_mu_, std::adopt_lock);
      if (hot) om_.snapshot_refreshes->Add(1);
      const Ctx ctx = engine_->QuiescentBoundaryContext();
      PublishJob job;
      job.epoch = ctx.epoch;
      job.full = false;
      CaptureJob(ctx, /*full=*/false, &job);
      AssembleAndFlip(std::move(job));
      // The demand flag stays armed: clearing it here could erase a
      // demand another reader raised concurrently, letting the writer
      // skip a boundary it owed — the cost of leaving it set is at most
      // one redundant (delta, usually empty) publish.
      std::lock_guard<std::mutex> view_lock(view_mu_);
      pin = frozen_view_;
    }
    if (info != nullptr) {
      // Audited, not assumed: min/max span the adjacency AND every
      // segment view, so the single-epoch contract's assertions in the
      // tests and bench actually bite if a publish ever flips them at
      // different epochs.
      info->min_epoch = pin->graph->epoch();
      info->max_epoch = pin->graph->epoch();
      for (const auto& segs : pin->segments) {
        info->min_epoch = std::min(info->min_epoch, segs->epoch());
        info->max_epoch = std::max(info->max_epoch, segs->epoch());
      }
    }
    const FrozenSegmentView view(&pin->segments, pin->ownership.get(),
                                 walks_per_node_, epsilon_);
    Status status;
    if constexpr (kIsSalsa) {
      BasicPersonalizedSalsaWalker<FrozenSegmentView, FrozenAdjacency>
          walker(&view, pin->graph.get(), options);
      status = walker.TopKAuthorities(seed, k, length, exclude_friends,
                                      rng_seed, ranked, walk_stats);
    } else {
      BasicPersonalizedPageRankWalker<FrozenSegmentView, FrozenAdjacency>
          walker(&view, pin->graph.get(), options);
      status = walker.TopK(seed, k, length, exclude_friends, rng_seed,
                           ranked, walk_stats);
    }
    // Drop the pin under the view mutex: the flip and the last unpin
    // stay mutually ordered, so the chunk refcounts a dropped view
    // releases (freeing unshared chunks) fall at deterministic points —
    // the memory tests rely on that, and readers pay one uncontended
    // lock per query for it.
    {
      std::lock_guard<std::mutex> lock(view_mu_);
      pin.reset();
    }
    if (hot) om_.query_personalized->Record(obs::NowNanos() - t0);
    return status;
  }

  /// One request of a batched PersonalizedTopK execution: the inputs a
  /// caller fills plus the per-item outputs the batch run writes back.
  struct PersonalizedBatchQuery {
    // Inputs.
    NodeId seed = 0;
    std::size_t k = 10;
    uint64_t walk_length = 0;
    bool exclude_friends = true;
    uint64_t rng_seed = 0;
    WalkerOptions options;
    // Outputs.
    Status status = Status::OK();
    std::vector<ScoredNode> ranked;
    SnapshotInfo snapshot;
    uint64_t service_ns = 0;  ///< this item's walk+rank wall time
  };

  /// The reusable walker scratch batched execution shares across items
  /// (serve/batcher.h owns one per worker thread).
  using PersonalizedScratch =
      std::conditional_t<kIsSalsa, SalsaWalkScratch, PersonalizedWalkScratch>;

  /// Batched PersonalizedTopK: pins the frozen view ONCE for the whole
  /// batch — one shared_ptr copy and one audited SnapshotInfo instead of
  /// per-request pins — and accumulates every walk into `scratch`'s
  /// dense arrays. Each item keeps its own RNG seed, walk length and
  /// deadline, and the walk core + ranking are shared with the unbatched
  /// path, so every item's answer is bit-identical to an unbatched
  /// PersonalizedTopK at the same epoch (the differential test's
  /// contract). Item statuses are reported per item; the call itself
  /// cannot fail. The lockstep self-refresh branch is intentionally
  /// skipped: batching is a serving-tier feature and the tier runs
  /// pipelined, where views refresh at every boundary anyway.
  void PersonalizedTopKInto(std::span<PersonalizedBatchQuery> batch,
                            PersonalizedScratch* scratch,
                            serve::ClockFn clock = &obs::NowNanos) {
    if (batch.empty()) return;
    const bool hot = engine_->metrics_enabled();
    frozen_demand_.store(true, std::memory_order_relaxed);
    std::shared_ptr<const FrozenViewSet> pin;
    {
      std::lock_guard<std::mutex> lock(view_mu_);
      pin = frozen_view_;
    }
    FASTPPR_CHECK_MSG(pin != nullptr && pin->graph != nullptr,
                      "no published snapshot to serve from");
    SnapshotInfo si;
    si.min_epoch = pin->graph->epoch();
    si.max_epoch = pin->graph->epoch();
    for (const auto& segs : pin->segments) {
      si.min_epoch = std::min(si.min_epoch, segs->epoch());
      si.max_epoch = std::max(si.max_epoch, segs->epoch());
    }
    const FrozenSegmentView view(&pin->segments, pin->ownership.get(),
                                 walks_per_node_, epsilon_);
    for (PersonalizedBatchQuery& q : batch) {
      q.snapshot = si;
      const uint64_t t0 = clock();
      if (q.options.deadline.expired()) {
        q.status =
            Status::DeadlineExceeded("deadline expired before walk start");
        q.service_ns = clock() - t0;
        continue;
      }
      if constexpr (kIsSalsa) {
        BasicPersonalizedSalsaWalker<FrozenSegmentView, FrozenAdjacency>
            walker(&view, pin->graph.get(), q.options);
        q.status = walker.TopKAuthoritiesInto(q.seed, q.k, q.walk_length,
                                              q.exclude_friends, q.rng_seed,
                                              scratch, &q.ranked);
      } else {
        BasicPersonalizedPageRankWalker<FrozenSegmentView, FrozenAdjacency>
            walker(&view, pin->graph.get(), q.options);
        q.status = walker.TopKInto(q.seed, q.k, q.walk_length,
                                   q.exclude_friends, q.rng_seed, scratch,
                                   &q.ranked);
      }
      q.service_ns = clock() - t0;
      if (hot) om_.query_personalized->Record(q.service_ns);
    }
    // One pin for the whole batch: account it to the first item's shard.
    if (hot) om_.snapshot_pins->Add(1, engine_->shard_of(batch[0].seed));
    {
      std::lock_guard<std::mutex> lock(view_mu_);
      pin.reset();
    }
  }

  /// Epoch of the currently published frozen view — the result cache's
  /// key component. Read under the pin mutex, so it is exactly the epoch
  /// a PersonalizedTopK pinning "now" would serve (modulo a concurrent
  /// rotation, which only turns a would-be hit into a miss or a
  /// same-epoch insert — never a stale hit).
  uint64_t frozen_epoch() const {
    std::lock_guard<std::mutex> lock(view_mu_);
    return frozen_view_ != nullptr && frozen_view_->graph != nullptr
               ? frozen_view_->graph->epoch()
               : 0;
  }

 private:
  /// One published view set: per-shard frozen segments (dense owned
  /// rows), the shared global->local map, plus the frozen adjacency —
  /// built once per frozen publish and flipped as a single pointer — so
  /// a reader's pin/unpin is one shared_ptr copy, not S+2 refcount
  /// bumps inside the contended critical section.
  struct FrozenViewSet {
    std::vector<std::shared_ptr<const FrozenSegments>> segments;
    std::shared_ptr<const SegmentOwnership> ownership;
    std::shared_ptr<const FrozenAdjacency> graph;
  };

  /// One window's captured-but-unassembled publish payload, moved from
  /// the boundary thread to the publisher thread.
  struct PublishJob {
    uint64_t epoch = 0;
    bool full = false;
    std::vector<snap::CapturedRows<uint64_t>> segments;
    AdjacencyCapture adjacency;
  };

  /// StoreView over the pinned frozen copies, routing each node's
  /// segments to its owning shard's dense table through the shared
  /// (immutable) SegmentOwnership map.
  class FrozenSegmentView {
   public:
    FrozenSegmentView(
        const std::vector<std::shared_ptr<const FrozenSegments>>* shards,
        const SegmentOwnership* ownership, std::size_t walks_per_node,
        double epsilon)
        : shards_(shards),
          ownership_(ownership),
          walks_per_node_(walks_per_node),
          epsilon_(epsilon) {}

    std::size_t walks_per_node() const { return walks_per_node_; }
    double epsilon() const { return epsilon_; }
    FrozenSegments::SegmentRef GetSegment(NodeId u, std::size_t k) const {
      return (*shards_)[ownership_->OwnerOf(u)]->Segment(
          ownership_->LocalRow(u, k));
    }

   private:
    const std::vector<std::shared_ptr<const FrozenSegments>>* shards_;
    const SegmentOwnership* ownership_;
    std::size_t walks_per_node_;
    double epsilon_;
  };

  /// The engine's window-boundary callback (BoundarySink): pipeline
  /// thread in pipelined mode, the Ingest caller in lockstep.
  void OnWindowBoundary(const Ctx& ctx) override {
    PublishBoundary(ctx, /*full=*/false);
  }

  /// One boundary's publish work on the boundary thread: seqlock count
  /// flips (cheap, every window), then the frozen-view delta capture —
  /// assembled inline in lockstep (demand-gated), handed to the
  /// publisher thread otherwise.
  void PublishBoundary(const Ctx& ctx, bool full) {
    PublishCounts(ctx);
    // Advance the published epoch BEFORE the frozen flip: a reader that
    // pins a view must never observe its epoch ahead of
    // published_epoch() (the staleness invariant the tests assert).
    published_epoch_.store(ctx.epoch, std::memory_order_release);
    const bool lockstep = engine_->lockstep();
    if (lockstep && !full &&
        !frozen_demand_.exchange(false, std::memory_order_relaxed)) {
      // Demand-driven frozen refresh: the delta copies are paid only
      // when a personalized read happened since the last frozen publish
      // — a lockstep writer with no personalized readers ingests at
      // full speed while the dirty feeds accumulate (bounded by their
      // overflow caps). The pipelined mode publishes every boundary
      // instead: the work rides the publisher thread, off the ingest
      // critical path.
      return;
    }
    PublishJob job;
    job.epoch = ctx.epoch;
    job.full = full;
    CaptureJob(ctx, full, &job);
    if (lockstep) {
      AssembleAndFlip(std::move(job));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      ++inflight_;
    }
    if (!publish_q_.Push(std::move(job))) {
      // Closed queue (service teardown) — the boundary is already past
      // the sink detach, so the job is dropped, not owed.
      std::lock_guard<std::mutex> lock(idle_mu_);
      --inflight_;
      idle_cv_.notify_all();
      return;
    }
    if (engine_->metrics_enabled()) {
      om_.pipeline_publish_queue_hw->Set(publish_q_.high_water());
    }
  }

  /// Publishes the seqlock count snapshots from the boundary context.
  void PublishCounts(const Ctx& ctx) {
    const std::size_t n = engine_->num_nodes();
    const std::size_t S = snapshots_.size();
    FASTPPR_CHECK_MSG(S == ctx.shards.size(),
                      "snapshot set no longer matches the engine");
    for (std::size_t s = 0; s < S; ++s) {
      const Engine& shard = *ctx.shards[s];
      snapshots_[s].Publish(
          n,
          [&shard](std::size_t v) {
            return shard.RankingCount(static_cast<NodeId>(v));
          },
          shard.RankingTotal(), ctx.epoch);
    }
    if (engine_->metrics_enabled()) om_.count_publishes->Add(1);
  }

  /// Boundary-thread half of a frozen publish: reads the
  /// boundary-frozen stores and graph into a self-contained job and
  /// clears the delta feeds. Everything live is read HERE; the
  /// assembly half touches only builder/publish state.
  void CaptureJob(const Ctx& ctx, bool full, PublishJob* job) {
    const bool hot = engine_->metrics_enabled();
    const uint64_t graph_epoch = ctx.graph->epoch();
    job->segments.resize(snapshots_.size());
    for (std::size_t s = 0; s < snapshots_.size(); ++s) {
      auto* store = ctx.shards[s]->mutable_walk_store();
      if (hot) {
        om_.segments_dirtied->Add(store->dirty_segments().size(), s);
      }
      seg_builders_[s].Capture(*store, store->dirty_segments(),
                               full || store->dirty_overflowed(),
                               &job->segments[s]);
      store->ClearDirtySegments();
    }
    adj_builder_.Capture(*ctx.graph, ctx.applied->entries(),
                         full || ctx.applied->overflowed(),
                         &job->adjacency);
    ctx.applied->Clear();
    // The single-writer contract, checked like the engine's repair
    // phases: the boundary graph must not have moved while we copied
    // from it (in pipelined mode the PRIMARY may move freely — the
    // capture reads the repair replica).
    FASTPPR_CHECK_MSG(ctx.graph->epoch() == graph_epoch,
                      "graph mutated during a snapshot capture");
  }

  /// Publisher half: fold the capture into the shared chains and flip
  /// the view pointer. Runs on the publisher thread in pipelined mode
  /// (overlapping the next windows' ingest and repair), inline on the
  /// boundary thread in lockstep.
  void AssembleAndFlip(PublishJob&& job) {
    const bool hot = engine_->metrics_enabled();
    const uint64_t t0 = hot ? obs::NowNanos() : 0;
    auto fresh = std::make_shared<FrozenViewSet>();
    fresh->segments.resize(job.segments.size());
    for (std::size_t s = 0; s < job.segments.size(); ++s) {
      fresh->segments[s] =
          seg_builders_[s].Assemble(std::move(job.segments[s]), job.epoch);
    }
    fresh->ownership = ownership_;
    fresh->graph = adj_builder_.Assemble(std::move(job.adjacency),
                                         job.epoch);
    {
      std::lock_guard<std::mutex> lock(view_mu_);
      frozen_view_ = std::move(fresh);
    }
    if (hot) {
      // "full" here means the caller forced a rebuild; per-shard
      // overflow-forced copies still count as delta publishes (the
      // decision was the delta path's).
      (job.full ? om_.frozen_publishes_full : om_.frozen_publishes_delta)
          ->Add(1);
      const uint64_t t1 = obs::NowNanos();
      om_.publish_phase->Record(t1 - t0);
      engine_->phase_tracer()->Record(engine_->publish_track(),
                                      obs::Phase::kPublish, job.epoch, t0,
                                      t1);
    }
  }

  void PublisherLoop() {
    PublishJob job;
    while (publish_q_.Pop(&job)) {
      AssembleAndFlip(std::move(job));
      {
        std::lock_guard<std::mutex> lock(idle_mu_);
        --inflight_;
      }
      idle_cv_.notify_all();
    }
  }

  void WaitPublisherIdle() {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [&] { return inflight_ == 0; });
  }

  ShardedEngine<Engine>* engine_;
  /// Cached metric handles (obs/engine_metrics.h); owned by the
  /// engine's registry, which outlives the service.
  obs::EngineMetrics om_;
  std::size_t walks_per_node_ = 0;
  double epsilon_ = 0.0;
  std::shared_ptr<const SegmentOwnership> ownership_;
  std::vector<SnapshotBuffer> snapshots_;
  std::mutex window_mu_;
  std::atomic<uint64_t> published_epoch_{0};

  /// Personalized-read state. `view_mu_` orders only pointer pins,
  /// unpins and flips; the builders are touched only by the boundary
  /// thread (Capture) and the publisher thread (Assemble), whose member
  /// footprints are disjoint.
  mutable std::mutex view_mu_;
  std::atomic<bool> frozen_demand_{false};
  std::shared_ptr<const FrozenViewSet> frozen_view_;
  std::vector<SegmentSnapshotBuilder> seg_builders_;
  AdjacencySnapshotBuilder adj_builder_;

  /// Publisher-thread state (pipelined engine mode only; the thread is
  /// never started in lockstep). `inflight_` counts enqueued jobs not
  /// yet flipped, guarded by `idle_mu_`.
  pipe::BoundedQueue<PublishJob> publish_q_{kPublishQueueCap};
  std::thread publisher_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::size_t inflight_ = 0;
};

}  // namespace fastppr

#endif  // FASTPPR_ENGINE_QUERY_SERVICE_H_
