#ifndef FASTPPR_SERVE_BATCHER_H_
#define FASTPPR_SERVE_BATCHER_H_

// Personalized-query batcher (DESIGN.md §10).
//
// A ServingTier worker coalesces the PersonalizedTopK requests it
// dequeues within one class slice into a batch and executes them
// through QueryService::PersonalizedTopKInto, which pins the frozen
// view ONCE for the whole batch (one shared_ptr copy, one audited
// SnapshotInfo) and accumulates every walk into one reusable dense
// scratch arena instead of per-walk hash maps. Each collected item
// keeps its own RNG seed, walk budget and deadline, and the walk core
// is shared with the unbatched path, so batching changes throughput,
// never answers: every item is bit-identical to its unbatched
// execution at the same epoch (the differential test's contract).
//
// The batcher is deliberately dumb: it owns the item/aux buffers (their
// capacity is retained across flushes) and the walker scratch, while
// the tier decides what enters a batch (degradation ladder, deadline
// fail-fast, fault hooks all run at collect time) and how results turn
// into Responses (the Flush sink). `Aux` is whatever per-item context
// the tier wants carried alongside — the batcher never inspects it.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "fastppr/serve/deadline.h"
#include "fastppr/util/check.h"

namespace fastppr::serve {

template <typename Service, typename Aux>
class PersonalizedBatcher {
 public:
  using Item = typename Service::PersonalizedBatchQuery;
  using Scratch = typename Service::PersonalizedScratch;

  explicit PersonalizedBatcher(std::size_t max_batch)
      : max_batch_(max_batch == 0 ? 1 : max_batch) {}

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= max_batch_; }
  std::size_t max_batch() const { return max_batch_; }

  /// Stages one request for the next Flush. The caller flushes when
  /// full() (and at the end of its class slice, so nothing lingers).
  void Add(Item item, Aux aux) {
    FASTPPR_CHECK(!full());
    items_.push_back(std::move(item));
    aux_.push_back(std::move(aux));
  }

  /// Executes every staged item against ONE pinned frozen view, then
  /// invokes `sink(aux, item)` per item in collection order and clears
  /// the stage (buffer capacity retained).
  template <typename Sink>
  void Flush(Service* service, ClockFn clock, Sink&& sink) {
    if (items_.empty()) return;
    service->PersonalizedTopKInto(std::span<Item>(items_), &scratch_,
                                  clock);
    for (std::size_t i = 0; i < items_.size(); ++i) {
      sink(aux_[i], items_[i]);
    }
    items_.clear();
    aux_.clear();
  }

 private:
  const std::size_t max_batch_;
  std::vector<Item> items_;
  std::vector<Aux> aux_;
  Scratch scratch_;
};

}  // namespace fastppr::serve

#endif  // FASTPPR_SERVE_BATCHER_H_
