// Figure 6: the number of fetches to the walk database needed to compose a
// stitched personalized walk of length s, for R in {5, 10, 20} stored
// segments per node — observed (thin lines in the paper) vs the Theorem 8
// bound evaluated with each user's own fitted power-law exponent (thick
// lines). Also checks the Remark 2 / Corollary 9 arithmetic.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "fastppr/analysis/power_law.h"
#include "fastppr/core/ppr_walker.h"
#include "fastppr/core/theory.h"
#include "fastppr/graph/generators.h"
#include "fastppr/store/social_store.h"
#include "fastppr/store/walk_store.h"
#include "fastppr/util/table_printer.h"

using namespace fastppr;
using namespace fastppr::bench;

int main() {
  Banner("Fetches vs walk length, R in {5,10,20}: observed vs Theorem 8",
         "Figure 6 and Remark 2 of Bahmani et al., VLDB 2010");

  const std::size_t n = 50000;
  const double eps = 0.2;
  Rng rng(6);
  ChungLuOptions gen;
  gen.num_nodes = n;
  gen.num_edges = 900000;
  gen.alpha_in = 0.76;
  gen.alpha_out = 0.6;
  auto edges = ChungLuDirected(gen, &rng);
  SocialStore social(n);
  for (const Edge& e : edges) {
    if (!social.AddEdge(e.src, e.dst).ok()) return 1;
  }

  std::vector<NodeId> users;
  while (users.size() < 100) {
    NodeId u = static_cast<NodeId>(rng.UniformIndex(n));
    const std::size_t f = social.graph().OutDegree(u);
    if (f >= 20 && f <= 30) users.push_back(u);
  }

  const std::vector<uint64_t> lengths{100,  500,   1000,  2000, 5000,
                                      10000, 20000, 50000};
  CsvWriter csv;
  const bool have_csv = OpenCsv(
      "fig6_fetches.csv",
      {"R", "steps", "observed_fetches", "theorem8_bound"}, &csv);

  for (std::size_t R : {5u, 10u, 20u}) {
    WalkStore store;
    store.Init(social.graph(), R, eps, 600 + R);
    PersonalizedPageRankWalker walker(&store, &social);

    // Per-user alpha from the empirical long-walk distribution, fitted on
    // the paper's [2f, 20f] window.
    std::vector<double> alphas(users.size(), 0.76);
    for (std::size_t i = 0; i < users.size(); ++i) {
      PersonalizedWalkResult long_walk;
      if (!walker.Walk(users[i], 50000, 7000 + i, &long_walk).ok()) {
        return 1;
      }
      std::vector<double> freqs;
      freqs.reserve(long_walk.visit_counts.size());
      for (const auto& [node, cnt] : long_walk.visit_counts) {
        freqs.push_back(static_cast<double>(cnt));
      }
      std::sort(freqs.begin(), freqs.end(), std::greater<double>());
      const std::size_t f = social.graph().OutDegree(users[i]);
      PowerLawFit fit = FitPowerLaw(freqs, 2 * f, 20 * f);
      if (fit.alpha > 0.2 && fit.alpha < 0.99) alphas[i] = fit.alpha;
    }

    std::printf("\nR = %zu\n", R);
    TablePrinter table({"walk steps s", "observed fetches (avg)",
                        "Theorem 8 bound (avg)"});
    for (uint64_t s : lengths) {
      double observed = 0.0;
      double bound = 0.0;
      for (std::size_t i = 0; i < users.size(); ++i) {
        PersonalizedWalkResult walk;
        if (!walker.Walk(users[i], s, 9000 + 31 * i + s, &walk).ok()) {
          return 1;
        }
        observed += static_cast<double>(walk.fetches);
        bound += Theorem8FetchBound(static_cast<double>(s), n, R,
                                    alphas[i]);
      }
      observed /= static_cast<double>(users.size());
      bound /= static_cast<double>(users.size());
      table.AddRow({std::to_string(s), TablePrinter::Fmt(observed, 1),
                    TablePrinter::Fmt(bound, 1)});
      if (have_csv) {
        csv.AddRow({std::to_string(R), std::to_string(s),
                    TablePrinter::Fmt(observed, 2),
                    TablePrinter::Fmt(bound, 2)});
      }
    }
    table.Print();
  }

  std::printf("\npaper's observations: the bound upper-bounds the "
              "measurement, and the fetch count is not very sensitive to "
              "R.\n");

  // Remark 2 arithmetic (alpha=0.75, c=5, R=10, k=100, n=1e8).
  std::printf("\nRemark 2 check: s_k = %.0f (paper: 63200), Corollary 9 "
              "fetch bound = %.0f (paper: 2000)\n",
              WalkLengthForTopK(100, 100000000, 0.75, 5.0),
              Corollary9FetchBound(100, 10, 0.75, 5.0));
  return 0;
}
