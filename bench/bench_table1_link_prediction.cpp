// Table 1 (Appendix A): link-prediction effectiveness of personalized
// HITS, COSINE, personalized PageRank and personalized SALSA. For 100
// users who grew their friend lists between two snapshot dates, each
// method ranks candidates on the date-1 graph; we count how many of the
// actually-made friendships appear in the top-100 / top-1000.
//
// Paper (Twitter):            HITS   COSINE  PageRank  SALSA
//   Top 100                   0.25   4.93    5.07      6.29
//   Top 1000                  0.86   11.69   12.71     13.58
// Expected shape: SALSA > PageRank > COSINE >> HITS.

#include <cstdio>

#include "bench_common.h"
#include "fastppr/analysis/link_prediction.h"
#include "fastppr/graph/generators.h"
#include "fastppr/util/table_printer.h"

using namespace fastppr;
using namespace fastppr::bench;

int main() {
  Banner("Link prediction effectiveness (4 methods)",
         "Table 1 / Appendix A of Bahmani et al., VLDB 2010");

  Rng rng(7);
  TriadicStreamOptions gen;
  gen.num_nodes = 20000;
  gen.out_per_node = 16;
  gen.p_triadic = 0.9;
  gen.attractiveness = 1.0;
  gen.p_reciprocal = 0.3;
  // Half the follows come from existing users, so friend lists keep
  // growing between the two snapshot dates (the paper's user-selection
  // criterion needs 50-100% growth).
  gen.p_internal = 0.5;
  // New follows are biased toward locally popular friends-of-friends —
  // the multi-path candidates that walk-based predictors rank highest.
  gen.closure_candidates = 4;
  gen.p_cofollower = 0.3;
  gen.avoid_duplicates = true;
  auto stream = TriadicClosureStream(gen, &rng);

  LinkPredictionConfig config;
  config.num_users = 100;
  config.min_friends_t1 = 8;
  config.max_friends_t1 = 20;
  config.min_growth = 0.3;
  config.max_growth = 2.0;
  config.min_followers_target = 10;
  config.epsilon = 0.2;
  config.tolerance = 1e-8;

  Rng sample_rng(8);
  auto dataset = BuildLinkPredictionDataset(stream, 0.8, config,
                                            &sample_rng);
  std::printf("date-1 graph: n=%zu m=%zu; eligible users %zu, evaluated "
              "%zu\n\n",
              dataset.snapshot1.num_nodes(), dataset.snapshot1.num_edges(),
              dataset.eligible_users, dataset.users.size());
  if (dataset.users.empty()) {
    std::printf("no eligible users; nothing to evaluate\n");
    return 1;
  }

  auto report = EvaluateLinkPrediction(dataset, config);

  TablePrinter table({"", "HITS", "COSINE", "PageRank", "SALSA"});
  table.AddRow({"Top 100", TablePrinter::Fmt(report.hits.hits_top_small, 2),
                TablePrinter::Fmt(report.cosine.hits_top_small, 2),
                TablePrinter::Fmt(report.pagerank.hits_top_small, 2),
                TablePrinter::Fmt(report.salsa.hits_top_small, 2)});
  table.AddRow({"Top 1000",
                TablePrinter::Fmt(report.hits.hits_top_large, 2),
                TablePrinter::Fmt(report.cosine.hits_top_large, 2),
                TablePrinter::Fmt(report.pagerank.hits_top_large, 2),
                TablePrinter::Fmt(report.salsa.hits_top_large, 2)});
  table.Print();

  std::printf("\npaper (Twitter):\n"
              "|          | HITS | COSINE | PageRank | SALSA |\n"
              "| Top 100  | 0.25 | 4.93   | 5.07     | 6.29  |\n"
              "| Top 1000 | 0.86 | 11.69  | 12.71    | 13.58 |\n"
              "\nshape check: the walk-based methods lead and HITS is "
              "last; margins are attenuated vs Twitter because synthetic "
              "neighbourhoods lack real local-popularity skew (see "
              "EXPERIMENTS.md).\n");

  CsvWriter csv;
  if (OpenCsv("table1_link_prediction.csv",
              {"cutoff", "hits", "cosine", "pagerank", "salsa"}, &csv)) {
    csv.AddRow({"100", TablePrinter::Fmt(report.hits.hits_top_small, 3),
                TablePrinter::Fmt(report.cosine.hits_top_small, 3),
                TablePrinter::Fmt(report.pagerank.hits_top_small, 3),
                TablePrinter::Fmt(report.salsa.hits_top_small, 3)});
    csv.AddRow({"1000", TablePrinter::Fmt(report.hits.hits_top_large, 3),
                TablePrinter::Fmt(report.cosine.hits_top_large, 3),
                TablePrinter::Fmt(report.pagerank.hits_top_large, 3),
                TablePrinter::Fmt(report.salsa.hits_top_large, 3)});
  }
  return 0;
}
