file(REMOVE_RECURSE
  "CMakeFiles/digraph_test.dir/tests/digraph_test.cpp.o"
  "CMakeFiles/digraph_test.dir/tests/digraph_test.cpp.o.d"
  "digraph_test"
  "digraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
