// Durable ShardedEngine tests (engine/sharded_engine.h + store/wal.h +
// store/checkpoint.h): the tentpole oracle is BIT-IDENTICAL recovery —
// SerializeState() of a recovered engine equals the live engine's, at
// S = 1 and S = 4, for PageRank and SALSA, across checkpoint rotations
// — plus the loud-failure taxonomy (NotFound / DataLoss / Corruption)
// for every way a durability directory can be incomplete.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fastppr/core/incremental_pagerank.h"
#include "fastppr/core/incremental_salsa.h"
#include "fastppr/engine/sharded_engine.h"
#include "fastppr/graph/generators.h"
#include "fastppr/store/checkpoint.h"
#include "fastppr/util/file_io.h"

namespace fastppr {
namespace {

MonteCarloOptions Opts(uint64_t seed) {
  MonteCarloOptions o;
  o.walks_per_node = 3;
  o.epsilon = 0.2;
  o.seed = seed;
  return o;
}

/// Reproducible mixed insert/delete stream (same recipe as
/// sharded_engine_test).
std::vector<EdgeEvent> MixedStream(std::size_t n, uint64_t seed,
                                   double p_delete) {
  Rng rng(seed);
  PreferentialAttachmentOptions gen;
  gen.num_nodes = n;
  gen.out_per_node = 4;
  auto edges = PreferentialAttachment(gen, &rng);
  rng.Shuffle(&edges);

  std::vector<EdgeEvent> events;
  std::vector<Edge> live;
  for (const Edge& e : edges) {
    events.push_back(EdgeEvent{EdgeEvent::Kind::kInsert, e});
    live.push_back(e);
    if (live.size() > 10 && rng.Bernoulli(p_delete)) {
      const std::size_t at = rng.UniformIndex(live.size());
      events.push_back(EdgeEvent{EdgeEvent::Kind::kDelete, live[at]});
      live[at] = live.back();
      live.pop_back();
    }
  }
  return events;
}

/// Splits `events` into windows of `width` and applies each.
template <typename EngineT>
void ApplyInWindows(EngineT* engine, std::span<const EdgeEvent> events,
                    std::size_t width) {
  for (std::size_t i = 0; i < events.size(); i += width) {
    const std::size_t hi = std::min(events.size(), i + width);
    const Status s =
        engine->ApplyEvents(events.subspan(i, hi - i));
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
}

/// A per-test durability directory with no stale state.
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/fastppr_dur_" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  for (const char* f : {kCheckpointFileName, kWalFileName}) {
    EXPECT_TRUE(RemoveFileIfExists(dir + "/" + f).ok());
    EXPECT_TRUE(RemoveFileIfExists(dir + "/" + f + std::string(".tmp")).ok());
  }
  return dir;
}

template <typename EngineT>
void ExpectBitIdenticalRecovery(const std::string& tag,
                                std::size_t num_shards,
                                uint64_t checkpoint_interval) {
  const std::size_t n = 120;
  const auto events = MixedStream(n, 1234, 0.15);
  const std::string dir = FreshDir(tag);

  ShardedOptions sharding;
  sharding.num_shards = num_shards;
  ShardedEngine<EngineT> live(n, Opts(99), sharding);
  DurabilityOptions dopts;
  dopts.directory = dir;
  dopts.checkpoint_interval_windows = checkpoint_interval;
  ASSERT_TRUE(live.EnableDurability(dopts).ok());

  // An uneven window width exercises both rotated-away WAL records and
  // a replayable tail.
  ApplyInWindows(&live, std::span<const EdgeEvent>(events), 37);

  std::unique_ptr<ShardedEngine<EngineT>> recovered;
  RecoveryInfo info;
  const Status rs =
      ShardedEngine<EngineT>::Recover(dir, 2, &recovered, &info);
  ASSERT_TRUE(rs.ok()) << rs.ToString();

  EXPECT_EQ(recovered->windows_applied(), live.windows_applied());
  EXPECT_EQ(info.checkpoint_window + info.replayed_windows,
            live.windows_applied());
  ASSERT_EQ(recovered->SerializeState(), live.SerializeState())
      << tag << ": recovered state diverged";

  // The recovered engine must also BEHAVE identically: the same future
  // windows produce the same state (RNG streams, slab layout and
  // counters all resumed exactly).
  const auto more = MixedStream(n, 777, 0.1);
  const std::span<const EdgeEvent> tail(more.data(),
                                        std::min<std::size_t>(200, more.size()));
  ApplyInWindows(&live, tail, 23);
  ApplyInWindows(recovered.get(), tail, 23);
  ASSERT_EQ(recovered->SerializeState(), live.SerializeState())
      << tag << ": divergence after post-recovery ingestion";

  // Recovery is read-only and therefore idempotent.
  std::unique_ptr<ShardedEngine<EngineT>> again;
  ASSERT_TRUE(ShardedEngine<EngineT>::Recover(dir, 1, &again).ok());
  EXPECT_EQ(again->SerializeState(), recovered->SerializeState());
}

TEST(DurableEngineTest, PageRankBitIdenticalOneShard) {
  ExpectBitIdenticalRecovery<IncrementalPageRank>("pr_s1", 1, 4);
}

TEST(DurableEngineTest, PageRankBitIdenticalFourShards) {
  ExpectBitIdenticalRecovery<IncrementalPageRank>("pr_s4", 4, 4);
}

TEST(DurableEngineTest, SalsaBitIdenticalOneShard) {
  ExpectBitIdenticalRecovery<IncrementalSalsa>("salsa_s1", 1, 4);
}

TEST(DurableEngineTest, SalsaBitIdenticalFourShards) {
  ExpectBitIdenticalRecovery<IncrementalSalsa>("salsa_s4", 4, 4);
}

TEST(DurableEngineTest, WalOnlyTailWithoutIntermediateCheckpoints) {
  // interval 0: the only checkpoint is EnableDurability's initial one,
  // so recovery replays the entire stream from the WAL.
  ExpectBitIdenticalRecovery<IncrementalPageRank>("pr_walonly", 2, 0);
}

TEST(DurableEngineTest, RecoveredThreadCountIsFree) {
  // The determinism contract extends through recovery: a recovered
  // engine with a different worker thread count is still bit-identical.
  const std::size_t n = 80;
  const auto events = MixedStream(n, 5, 0.1);
  const std::string dir = FreshDir("threads");

  ShardedOptions sharding;
  sharding.num_shards = 4;
  sharding.num_threads = 4;
  ShardedEngine<IncrementalPageRank> live(n, Opts(3), sharding);
  DurabilityOptions dopts;
  dopts.directory = dir;
  ASSERT_TRUE(live.EnableDurability(dopts).ok());
  ApplyInWindows(&live, std::span<const EdgeEvent>(events), 50);

  std::unique_ptr<ShardedEngine<IncrementalPageRank>> recovered;
  ASSERT_TRUE(
      ShardedEngine<IncrementalPageRank>::Recover(dir, 1, &recovered).ok());
  EXPECT_EQ(recovered->SerializeState(), live.SerializeState());
}

TEST(DurableEngineTest, RejectedEventsReplayIdentically) {
  // A window with an out-of-range edge is rejected mid-stream; the
  // applied prefix (and its repairs) must recover bit-identically.
  const std::size_t n = 40;
  const std::string dir = FreshDir("rejects");
  ShardedOptions sharding;
  sharding.num_shards = 2;
  ShardedEngine<IncrementalPageRank> live(n, Opts(11), sharding);
  DurabilityOptions dopts;
  dopts.directory = dir;
  ASSERT_TRUE(live.EnableDurability(dopts).ok());

  const auto good = MixedStream(n, 21, 0.0);
  ASSERT_TRUE(
      live.ApplyEvents(std::span<const EdgeEvent>(good.data(), 30)).ok());
  std::vector<EdgeEvent> bad(good.begin() + 30, good.begin() + 40);
  bad.insert(bad.begin() + 5,
             EdgeEvent{EdgeEvent::Kind::kInsert,
                       Edge{static_cast<NodeId>(n + 7), 0}});
  EXPECT_FALSE(live.ApplyEvents(std::span<const EdgeEvent>(bad)).ok());

  std::unique_ptr<ShardedEngine<IncrementalPageRank>> recovered;
  const Status rs =
      ShardedEngine<IncrementalPageRank>::Recover(dir, 2, &recovered);
  ASSERT_TRUE(rs.ok()) << rs.ToString();
  EXPECT_EQ(recovered->SerializeState(), live.SerializeState());
}

TEST(DurableEngineTest, MissingEverythingIsNotFound) {
  const std::string dir = FreshDir("nothing");
  std::unique_ptr<ShardedEngine<IncrementalPageRank>> out;
  const Status s =
      ShardedEngine<IncrementalPageRank>::Recover(dir, 1, &out);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
}

TEST(DurableEngineTest, MissingOneFileIsDataLoss) {
  for (const bool drop_wal : {true, false}) {
    const std::string dir =
        FreshDir(drop_wal ? "drop_wal" : "drop_ckpt");
    ShardedOptions sharding;
    sharding.num_shards = 1;
    ShardedEngine<IncrementalPageRank> live(30, Opts(1), sharding);
    DurabilityOptions dopts;
    dopts.directory = dir;
    ASSERT_TRUE(live.EnableDurability(dopts).ok());
    const auto events = MixedStream(30, 2, 0.0);
    ASSERT_TRUE(
        live.ApplyEvents(std::span<const EdgeEvent>(events.data(), 20))
            .ok());

    const std::string victim =
        dir + "/" + (drop_wal ? kWalFileName : kCheckpointFileName);
    ASSERT_TRUE(RemoveFileIfExists(victim).ok());

    std::unique_ptr<ShardedEngine<IncrementalPageRank>> out;
    const Status s =
        ShardedEngine<IncrementalPageRank>::Recover(dir, 1, &out);
    EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
  }
}

TEST(DurableEngineTest, WrongEngineTypeIsCorruption) {
  const std::string dir = FreshDir("wrong_type");
  ShardedOptions sharding;
  sharding.num_shards = 1;
  ShardedEngine<IncrementalPageRank> live(30, Opts(1), sharding);
  DurabilityOptions dopts;
  dopts.directory = dir;
  ASSERT_TRUE(live.EnableDurability(dopts).ok());

  std::unique_ptr<ShardedEngine<IncrementalSalsa>> out;
  const Status s =
      ShardedEngine<IncrementalSalsa>::Recover(dir, 1, &out);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(DurableEngineTest, FlippedCheckpointBitIsCorruptionAtEngineLevel) {
  const std::string dir = FreshDir("engine_flip");
  ShardedOptions sharding;
  sharding.num_shards = 2;
  ShardedEngine<IncrementalPageRank> live(60, Opts(8), sharding);
  DurabilityOptions dopts;
  dopts.directory = dir;
  ASSERT_TRUE(live.EnableDurability(dopts).ok());
  const auto events = MixedStream(60, 13, 0.1);
  ApplyInWindows(&live, std::span<const EdgeEvent>(events.data(), 100), 25);

  const std::string ckpt = dir + "/" + kCheckpointFileName;
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(ckpt, &bytes).ok());
  // A handful of scattered flips (the exhaustive sweep lives in
  // checkpoint_test; here we assert the engine surfaces it).
  for (const std::size_t at :
       {std::size_t{0}, bytes.size() / 3, bytes.size() - 1}) {
    std::vector<uint8_t> copy = bytes;
    copy[at] ^= 0x10;
    WritableFile f;
    ASSERT_TRUE(WritableFile::Open(ckpt + ".tmp", &f).ok());
    ASSERT_TRUE(f.Append(copy.data(), copy.size()).ok());
    ASSERT_TRUE(f.Close().ok());
    ASSERT_TRUE(AtomicReplace(ckpt + ".tmp", ckpt).ok());

    std::unique_ptr<ShardedEngine<IncrementalPageRank>> out;
    const Status s =
        ShardedEngine<IncrementalPageRank>::Recover(dir, 1, &out);
    EXPECT_TRUE(s.IsCorruption()) << "flip at " << at << ": "
                                  << s.ToString();
  }
}

TEST(DurableEngineTest, CheckpointBoundsReplay) {
  // With interval 1 every window checkpoints: recovery must replay
  // nothing (the WAL is freshly rotated) yet still be bit-identical.
  const std::size_t n = 50;
  const std::string dir = FreshDir("interval1");
  ShardedOptions sharding;
  sharding.num_shards = 2;
  ShardedEngine<IncrementalPageRank> live(n, Opts(4), sharding);
  DurabilityOptions dopts;
  dopts.directory = dir;
  dopts.checkpoint_interval_windows = 1;
  ASSERT_TRUE(live.EnableDurability(dopts).ok());
  const auto events = MixedStream(n, 31, 0.1);
  ApplyInWindows(&live, std::span<const EdgeEvent>(events.data(), 120), 30);

  std::unique_ptr<ShardedEngine<IncrementalPageRank>> recovered;
  RecoveryInfo info;
  ASSERT_TRUE(ShardedEngine<IncrementalPageRank>::Recover(dir, 1,
                                                          &recovered, &info)
                  .ok());
  EXPECT_EQ(info.replayed_windows, 0u);
  EXPECT_EQ(recovered->SerializeState(), live.SerializeState());
}

}  // namespace
}  // namespace fastppr
