#include "fastppr/graph/edge_stream.h"

#include "fastppr/util/check.h"

namespace fastppr {

RandomPermutationStream::RandomPermutationStream(std::vector<Edge> edges,
                                                 Rng* rng)
    : edges_(std::move(edges)) {
  rng->Shuffle(&edges_);
}

std::optional<EdgeEvent> RandomPermutationStream::Next() {
  if (pos_ >= edges_.size()) return std::nullopt;
  return EdgeEvent{EdgeEvent::Kind::kInsert, edges_[pos_++]};
}

std::optional<EdgeEvent> AdversarialStream::Next() {
  if (pos_ >= edges_.size()) return std::nullopt;
  return EdgeEvent{EdgeEvent::Kind::kInsert, edges_[pos_++]};
}

DirichletStream::DirichletStream(std::size_t num_nodes,
                                 std::size_t num_events, Rng* rng)
    : num_nodes_(num_nodes), num_events_(num_events), rng_(rng->Fork()) {
  FASTPPR_CHECK(num_nodes_ >= 2);
}

std::optional<EdgeEvent> DirichletStream::Next() {
  if (produced_ >= num_events_) return std::nullopt;
  // Pr[u] = (outdeg_u + 1) / (t - 1 + n): with probability
  // t-1 / (t-1+n) pick an existing edge endpoint (prop. to outdeg),
  // otherwise a uniform node (the "+1" smoothing).
  auto sample = [&](const std::vector<NodeId>& endpoints) {
    double t_minus_1 = static_cast<double>(endpoints.size());
    double denom = t_minus_1 + static_cast<double>(num_nodes_);
    if (!endpoints.empty() && rng_.NextDouble() * denom < t_minus_1) {
      return endpoints[rng_.UniformIndex(endpoints.size())];
    }
    return static_cast<NodeId>(rng_.UniformIndex(num_nodes_));
  };
  NodeId src = sample(out_endpoints_);
  NodeId dst = sample(in_endpoints_);
  int attempts = 0;
  while (dst == src && attempts++ < 32) dst = sample(in_endpoints_);
  if (dst == src) dst = static_cast<NodeId>((src + 1) % num_nodes_);
  out_endpoints_.push_back(src);
  in_endpoints_.push_back(dst);
  ++produced_;
  return EdgeEvent{EdgeEvent::Kind::kInsert, Edge{src, dst}};
}

ChurnStream::ChurnStream(std::vector<Edge> edges, double p_delete,
                         std::size_t warmup, Rng* rng)
    : pending_(std::move(edges)), p_delete_(p_delete), warmup_(warmup),
      rng_(rng->Fork()) {
  rng_.Shuffle(&pending_);
  // Treat pending_ as a stack: reverse so pop_back() yields shuffled order.
}

std::optional<EdgeEvent> ChurnStream::Next() {
  const bool can_delete = inserted_ > warmup_ && !live_.empty();
  if (can_delete && rng_.Bernoulli(p_delete_)) {
    std::size_t i = rng_.UniformIndex(live_.size());
    Edge victim = live_[i];
    live_[i] = live_.back();
    live_.pop_back();
    reinsert_.push_back(victim);
    return EdgeEvent{EdgeEvent::Kind::kDelete, victim};
  }
  Edge e;
  if (!pending_.empty()) {
    e = pending_.back();
    pending_.pop_back();
  } else if (!reinsert_.empty()) {
    e = reinsert_.back();
    reinsert_.pop_back();
  } else {
    return std::nullopt;
  }
  live_.push_back(e);
  ++inserted_;
  return EdgeEvent{EdgeEvent::Kind::kInsert, e};
}

std::vector<EdgeEvent> ApplyAll(EdgeStream* stream, DiGraph* graph) {
  std::vector<EdgeEvent> applied;
  while (auto ev = stream->Next()) {
    graph->EnsureNodes(
        std::max<std::size_t>(ev->edge.src, ev->edge.dst) + 1);
    if (ev->kind == EdgeEvent::Kind::kInsert) {
      FASTPPR_CHECK(graph->AddEdge(ev->edge.src, ev->edge.dst).ok());
    } else {
      FASTPPR_CHECK(graph->RemoveEdge(ev->edge.src, ev->edge.dst).ok());
    }
    applied.push_back(*ev);
  }
  return applied;
}

}  // namespace fastppr
