#include "fastppr/core/incremental_salsa.h"

#include <algorithm>

#include "fastppr/util/check.h"

namespace fastppr {

IncrementalSalsa::IncrementalSalsa(std::size_t num_nodes,
                                   const MonteCarloOptions& opts)
    : options_(opts), social_(num_nodes), rng_(opts.seed ^ 0x5A15AULL) {
  walks_.Init(social_.graph(), opts.walks_per_node, opts.epsilon, opts.seed);
}

IncrementalSalsa::IncrementalSalsa(const DiGraph& initial,
                                   const MonteCarloOptions& opts)
    : options_(opts), social_(initial.num_nodes()),
      rng_(opts.seed ^ 0x5A15AULL) {
  DiGraph* g = social_.mutable_graph();
  for (NodeId u = 0; u < initial.num_nodes(); ++u) {
    for (NodeId v : initial.OutNeighbors(u)) {
      FASTPPR_CHECK(g->AddEdge(u, v).ok());
    }
  }
  walks_.Init(social_.graph(), opts.walks_per_node, opts.epsilon, opts.seed);
}

Status IncrementalSalsa::AddEdge(NodeId src, NodeId dst) {
  FASTPPR_RETURN_IF_ERROR(social_.AddEdge(src, dst));
  last_stats_ = walks_.OnEdgeInserted(social_.graph(), src, dst, &rng_);
  lifetime_stats_.Accumulate(last_stats_);
  ++arrivals_;
  return Status::OK();
}

Status IncrementalSalsa::RemoveEdge(NodeId src, NodeId dst) {
  FASTPPR_RETURN_IF_ERROR(social_.RemoveEdge(src, dst));
  last_stats_ = walks_.OnEdgeRemoved(social_.graph(), src, dst, &rng_);
  lifetime_stats_.Accumulate(last_stats_);
  return Status::OK();
}

Status IncrementalSalsa::ApplyEvent(const EdgeEvent& event) {
  if (event.kind == EdgeEvent::Kind::kInsert) {
    return AddEdge(event.edge.src, event.edge.dst);
  }
  return RemoveEdge(event.edge.src, event.edge.dst);
}

std::vector<NodeId> IncrementalSalsa::TopKAuthorities(std::size_t k) const {
  std::vector<NodeId> order(num_nodes());
  for (NodeId v = 0; v < order.size(); ++v) order[v] = v;
  const std::size_t take = std::min(k, order.size());
  const SalsaWalkStore& ws = walks_;
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&ws](NodeId a, NodeId b) {
                      const int64_t xa = ws.AuthorityVisits(a);
                      const int64_t xb = ws.AuthorityVisits(b);
                      if (xa != xb) return xa > xb;
                      return a < b;
                    });
  order.resize(take);
  return order;
}

}  // namespace fastppr
