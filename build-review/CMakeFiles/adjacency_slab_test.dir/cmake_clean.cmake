file(REMOVE_RECURSE
  "CMakeFiles/adjacency_slab_test.dir/tests/adjacency_slab_test.cpp.o"
  "CMakeFiles/adjacency_slab_test.dir/tests/adjacency_slab_test.cpp.o.d"
  "adjacency_slab_test"
  "adjacency_slab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjacency_slab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
