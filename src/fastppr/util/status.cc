#include "fastppr/util/status.h"

namespace fastppr {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kDataLoss:
      return "DataLoss";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace fastppr
