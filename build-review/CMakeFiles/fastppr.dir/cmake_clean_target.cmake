file(REMOVE_RECURSE
  "libfastppr.a"
)
