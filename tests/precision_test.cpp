#include "fastppr/analysis/precision.h"

#include <gtest/gtest.h>

namespace fastppr {
namespace {

TEST(InterpolatedPrecisionTest, PerfectRankingIsAllOnes) {
  std::vector<NodeId> relevant{1, 2, 3};
  std::vector<NodeId> ranked{1, 2, 3, 4, 5};
  auto curve = InterpolatedPrecision(relevant, ranked);
  for (double p : curve) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(InterpolatedPrecisionTest, NothingRetrievedIsAllZeros) {
  std::vector<NodeId> relevant{1, 2};
  std::vector<NodeId> ranked{7, 8, 9};
  auto curve = InterpolatedPrecision(relevant, ranked);
  for (double p : curve) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(InterpolatedPrecisionTest, HandComputedCase) {
  // Relevant {a,b}; ranking: [x, a, y, b]. Hits at positions 2 and 4:
  // (recall .5, precision .5), (recall 1, precision .5).
  std::vector<NodeId> relevant{10, 20};
  std::vector<NodeId> ranked{1, 10, 2, 20};
  auto curve = InterpolatedPrecision(relevant, ranked);
  // Interpolated precision is 0.5 at every level (max precision at any
  // recall >= r is 0.5 everywhere).
  for (double p : curve) EXPECT_DOUBLE_EQ(p, 0.5);
}

TEST(InterpolatedPrecisionTest, EarlyHitLiftsLowRecallLevels) {
  // Relevant {a,b}; ranking: [a, x, x, x, b, ...].
  std::vector<NodeId> relevant{1, 2};
  std::vector<NodeId> ranked{1, 9, 8, 7, 2};
  auto curve = InterpolatedPrecision(relevant, ranked);
  // recall .5 reached at pos 1 (precision 1.0); recall 1.0 at pos 5
  // (precision .4).
  EXPECT_DOUBLE_EQ(curve[0], 1.0);   // level 0.0
  EXPECT_DOUBLE_EQ(curve[5], 1.0);   // level 0.5
  EXPECT_DOUBLE_EQ(curve[6], 0.4);   // level 0.6
  EXPECT_DOUBLE_EQ(curve[10], 0.4);  // level 1.0
}

TEST(InterpolatedPrecisionTest, EmptyRelevantGivesZeros) {
  auto curve = InterpolatedPrecision({}, {1, 2, 3});
  for (double p : curve) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(AverageCurvesTest, ElementwiseMean) {
  PrecisionCurve a{};
  PrecisionCurve b{};
  for (std::size_t i = 0; i < 11; ++i) {
    a[i] = 1.0;
    b[i] = 0.0;
  }
  auto avg = AverageCurves({a, b});
  for (double p : avg) EXPECT_DOUBLE_EQ(p, 0.5);
  EXPECT_DOUBLE_EQ(AverageCurves({})[0], 0.0);
}

TEST(TopKOverlapTest, CountsIntersection) {
  std::vector<NodeId> a{1, 2, 3, 4};
  std::vector<NodeId> b{3, 2, 9, 8};
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 4), 0.5);
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 2), 0.5);  // {1,2} vs {3,2}
  EXPECT_DOUBLE_EQ(TopKOverlap(a, a, 4), 1.0);
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 0), 0.0);
}

TEST(RecallAtDepthTest, FractionFound) {
  std::vector<NodeId> relevant{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RecallAtDepth(relevant, {1, 9, 3}), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtDepth(relevant, {}), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtDepth({}, {1}), 0.0);
}

}  // namespace
}  // namespace fastppr
