
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/legacy/legacy_digraph.cc" "CMakeFiles/fastppr_bench_legacy.dir/bench/legacy/legacy_digraph.cc.o" "gcc" "CMakeFiles/fastppr_bench_legacy.dir/bench/legacy/legacy_digraph.cc.o.d"
  "/root/repo/bench/legacy/legacy_salsa_walk_store.cc" "CMakeFiles/fastppr_bench_legacy.dir/bench/legacy/legacy_salsa_walk_store.cc.o" "gcc" "CMakeFiles/fastppr_bench_legacy.dir/bench/legacy/legacy_salsa_walk_store.cc.o.d"
  "/root/repo/bench/legacy/legacy_walk_store.cc" "CMakeFiles/fastppr_bench_legacy.dir/bench/legacy/legacy_walk_store.cc.o" "gcc" "CMakeFiles/fastppr_bench_legacy.dir/bench/legacy/legacy_walk_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/fastppr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
