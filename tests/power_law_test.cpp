#include "fastppr/analysis/power_law.h"

#include <cmath>

#include <gtest/gtest.h>

#include "fastppr/core/theory.h"
#include "fastppr/util/random.h"

namespace fastppr {
namespace {

TEST(PowerLawFitTest, RecoversExactExponent) {
  // Values generated exactly from equation (3) must fit with the same
  // exponent and r^2 = 1.
  const std::size_t n = 5000;
  const double alpha = 0.76;
  std::vector<double> values(n);
  for (std::size_t j = 1; j <= n; ++j) {
    values[j - 1] = PowerLawScore(j, n, alpha);
  }
  PowerLawFit fit = FitPowerLaw(values, 1, n);
  EXPECT_NEAR(fit.alpha, alpha, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_EQ(fit.points, n);
}

TEST(PowerLawFitTest, WindowRestrictsRanks) {
  // A curve that is power-law only in the middle: fit the window.
  std::vector<double> values(1000);
  for (std::size_t j = 1; j <= 1000; ++j) {
    values[j - 1] = std::pow(static_cast<double>(j), -0.5);
  }
  // Corrupt the head.
  values[0] = 100.0;
  values[1] = 50.0;
  PowerLawFit fit = FitPowerLaw(values, 10, 500);
  EXPECT_NEAR(fit.alpha, 0.5, 1e-9);
}

TEST(PowerLawFitTest, SkipsZeros) {
  std::vector<double> values{1.0, 0.5, 0.0, 0.25, 0.0};
  PowerLawFit fit = FitPowerLaw(values, 1, 5);
  EXPECT_EQ(fit.points, 3u);
}

TEST(PowerLawFitTest, NoisyDataStillClose) {
  Rng rng(1);
  const double alpha = 0.7;
  std::vector<double> values(2000);
  for (std::size_t j = 1; j <= 2000; ++j) {
    const double noise = 1.0 + 0.1 * (rng.NextDouble() - 0.5);
    values[j - 1] = std::pow(static_cast<double>(j), -alpha) * noise;
  }
  PowerLawFit fit = FitPowerLaw(values, 1, 2000);
  EXPECT_NEAR(fit.alpha, alpha, 0.02);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(PowerLawFitTest, DegenerateInputs) {
  EXPECT_EQ(FitPowerLaw({}, 1, 10).points, 0u);
  EXPECT_EQ(FitPowerLaw({1.0}, 1, 1).points, 1u);
  EXPECT_EQ(FitPowerLaw({1.0}, 1, 1).alpha, 0.0);  // needs >= 2 points
  EXPECT_EQ(FitPowerLaw({1.0, 0.5}, 5, 3).points, 0u);  // empty window
}

TEST(PowerLawFitTest, UnsortedConvenience) {
  std::vector<double> values;
  for (std::size_t j = 1; j <= 100; ++j) {
    values.push_back(std::pow(static_cast<double>(j), -0.6));
  }
  Rng rng(2);
  rng.Shuffle(&values);
  PowerLawFit fit = FitPowerLawUnsorted(values);
  EXPECT_NEAR(fit.alpha, 0.6, 1e-9);
}

TEST(LogSpacedRankSeriesTest, CoversRangeWithoutDuplicates) {
  std::vector<double> values(100000);
  for (std::size_t j = 0; j < values.size(); ++j) {
    values[j] = 1.0 / static_cast<double>(j + 1);
  }
  auto series = LogSpacedRankSeries(values, 10);
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series.front().first, 1u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].first, series[i - 1].first);
  }
  EXPECT_LE(series.back().first, 100000u);
  // ~10 points per decade over 5 decades.
  EXPECT_GT(series.size(), 30u);
  EXPECT_LT(series.size(), 80u);
}

TEST(LogSpacedRankSeriesTest, EmptyInput) {
  EXPECT_TRUE(LogSpacedRankSeries({}, 10).empty());
}

}  // namespace
}  // namespace fastppr
