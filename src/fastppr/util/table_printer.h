#ifndef FASTPPR_UTIL_TABLE_PRINTER_H_
#define FASTPPR_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace fastppr {

/// Renders aligned ASCII tables for bench harness output, mirroring the
/// rows/series format of the paper's tables and figures.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Fmt(double value, int precision = 4);
  static std::string Fmt(uint64_t value);
  static std::string Fmt(int64_t value);

  /// The rendered table (header, separator, rows).
  std::string ToString() const;

  /// Prints the rendered table to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fastppr

#endif  // FASTPPR_UTIL_TABLE_PRINTER_H_
