#ifndef FASTPPR_BASELINE_MONTE_CARLO_STATIC_H_
#define FASTPPR_BASELINE_MONTE_CARLO_STATIC_H_

#include <cstdint>
#include <vector>

#include "fastppr/graph/digraph.h"
#include "fastppr/graph/types.h"
#include "fastppr/util/random.h"

namespace fastppr {

/// The from-scratch Monte Carlo baseline (Avrachenkov et al. [3] in the
/// paper): R fresh walk segments per node, visit counts, nothing stored.
/// Recomputing this on every arrival is the Omega(mn/eps) straw man the
/// incremental algorithm is compared against.
struct StaticMonteCarloResult {
  std::vector<int64_t> visit_counts;
  uint64_t total_steps = 0;   ///< walk steps taken (the paper's work unit)
  int64_t total_visits = 0;
};

StaticMonteCarloResult StaticMonteCarloPageRank(const DiGraph& g,
                                                std::size_t walks_per_node,
                                                double epsilon, Rng* rng);

/// Normalized estimates (visit frequency; sums to 1).
std::vector<double> NormalizeVisits(const StaticMonteCarloResult& result);

}  // namespace fastppr

#endif  // FASTPPR_BASELINE_MONTE_CARLO_STATIC_H_
