#ifndef FASTPPR_STORE_ARENA_IO_H_
#define FASTPPR_STORE_ARENA_IO_H_

// Flat byte (de)serialization of the SoA arenas (see DESIGN.md §8).
//
// The slab stores are already structure-of-arrays: a checkpoint of an
// engine is nothing but the concatenation of its flat columns plus a
// handful of scalars (RNG state, counters, epoch). ArenaWriter appends
// trivially-copyable values and whole vectors as raw little-endian
// bytes into one contiguous body; ArenaReader replays them with strict
// bounds checking and a sticky failure flag, so a truncated or
// garbage-length body surfaces as Status::Corruption — never a crash or
// a multi-gigabyte allocation.
//
// The encoding is the in-memory representation (same-architecture,
// same-build restore — the recovery use case). Integrity is guarded one
// level up: every WAL record and checkpoint body carries a CRC32C
// (store/wal.h, store/checkpoint.h), so by the time an ArenaReader
// parses bytes they are already checksum-verified; reader-side bounds
// checks exist to catch version/logic drift loudly, not flipped bits.
//
// Struct values serialized through Pod() must not contain padding bytes
// (padding is indeterminate memory: it would leak garbage into the CRC
// and break the bit-identical-recovery oracle). Vec() elements are
// likewise raw-copied; every persisted struct in this codebase is
// padding-free by construction (static_asserted at its definition).

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "fastppr/util/status.h"

namespace fastppr {

class ArenaWriter {
 public:
  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes(&value, sizeof(T));
  }

  /// u64 element count, then the elements as raw bytes.
  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod(static_cast<uint64_t>(v.size()));
    if (!v.empty()) Bytes(v.data(), v.size() * sizeof(T));
  }

  void Bytes(const void* data, std::size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class ArenaReader {
 public:
  ArenaReader(const uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ArenaReader(const std::vector<uint8_t>& body)
      : ArenaReader(body.data(), body.size()) {}

  template <typename T>
  bool Pod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!Require(sizeof(T), "scalar")) return false;
    std::memcpy(value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool Vec(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!Pod(&count)) return false;
    // Bound BEFORE allocating: a garbage count must not OOM the
    // recovery process.
    if (count > (size_ - pos_) / sizeof(T)) {
      return Fail("vector length exceeds remaining bytes");
    }
    v->resize(static_cast<std::size_t>(count));
    if (count > 0) {
      std::memcpy(v->data(), data_ + pos_,
                  static_cast<std::size_t>(count) * sizeof(T));
      pos_ += static_cast<std::size_t>(count) * sizeof(T);
    }
    return true;
  }

  /// Marks the reader failed (sticky) and returns false so callers can
  /// write `return reader->Fail("...")` in one line.
  bool Fail(const std::string& why) {
    ok_ = false;
    if (error_.empty()) error_ = why;
    return false;
  }

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return ok_ && pos_ == size_; }

  /// Collapses the reader's outcome into a Status: Corruption with the
  /// first failure (or trailing-garbage) diagnosis, OK otherwise.
  Status ToStatus(const std::string& context) const {
    if (!ok_) return Status::Corruption(context + ": " + error_);
    if (pos_ != size_) {
      return Status::Corruption(context + ": trailing bytes after body");
    }
    return Status::OK();
  }

 private:
  bool Require(std::size_t n, const char* what) {
    if (size_ - pos_ < n) {
      return Fail(std::string("truncated ") + what);
    }
    return ok_;
  }

  const uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace fastppr

#endif  // FASTPPR_STORE_ARENA_IO_H_
