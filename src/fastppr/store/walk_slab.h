#ifndef FASTPPR_STORE_WALK_SLAB_H_
#define FASTPPR_STORE_WALK_SLAB_H_

// Slab-backed storage primitives for the walk stores (see DESIGN.md).
//
// The PageRank Store is exercised once per edge arrival, so its constant
// factor is the product. The seed layout paid one heap allocation per
// segment (std::vector<PathEntry>) and per node (std::vector<VisitRef>
// inverted-index rows); every reroute chased pointers across the heap.
// This header replaces both with the randgraph-style flat layout: walk
// state packed into 8-byte words stored in contiguous slab arenas, with
// per-row offset/length spans on top.
//
// A word packs a 40-bit id in the high bits and a 24-bit ordinal in the
// low bits:
//   * path entries:    (node id, back-slot into the inverted index)
//   * index entries:   (segment id, position within the segment)
// 40 bits of id supports a trillion nodes / segments; 24 bits of ordinal
// bounds both index rows and segment lengths at ~16.7M, far beyond the
// geometric segment lengths (mean 1/eps) and any realistic visit-list row.
// Overflow aborts via FASTPPR_CHECK rather than wrapping.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "fastppr/util/check.h"

namespace fastppr::slab {

inline constexpr uint32_t kLoBits = 24;
inline constexpr uint64_t kLoMask = (uint64_t{1} << kLoBits) - 1;
inline constexpr uint64_t kHiLimit = uint64_t{1} << 40;
/// Sentinel ordinal ("no slot"); the largest 24-bit value is reserved.
inline constexpr uint32_t kNoLo = static_cast<uint32_t>(kLoMask);

constexpr uint64_t Pack(uint64_t hi, uint32_t lo) {
  return (hi << kLoBits) | (lo & kLoMask);
}
constexpr uint64_t Hi(uint64_t word) { return word >> kLoBits; }
constexpr uint32_t Lo(uint64_t word) {
  return static_cast<uint32_t>(word & kLoMask);
}
constexpr uint64_t WithLo(uint64_t word, uint32_t lo) {
  return (word & ~kLoMask) | (lo & kLoMask);
}

/// A pool of variable-length rows of `Word`s backed by one flat arena.
/// Rows support append, pop-back and swap-remove in O(1); a row that
/// outgrows its reserved span is relocated to the arena tail with
/// doubled capacity (the vacated span is dead until the next compaction).
/// External references address (row, index) pairs — never raw offsets —
/// so relocation and compaction are invisible to callers.
///
/// `Word` is uint64_t for the packed walk/index rows (SlabPool) and
/// NodeId for the frozen adjacency rows of store/segment_snapshot.h
/// (half the bytes; the packed-word helpers SetLo/VerifiedSwapRemove are
/// only instantiated where a pool actually uses them).
template <typename Word>
class BasicSlabPool {
 public:
  /// One row per entry of `sizes`, laid out back-to-back (size 0, ready
  /// for bulk fill). `headroom` grants each row `size + size/2 + 2` spare
  /// capacity so steady-state churn (truncate/re-extend, swap-remove/
  /// push) does not immediately relocate every touched row.
  void ResetWithCapacities(const std::vector<uint32_t>& sizes,
                           bool headroom = false) {
    rows_.assign(sizes.size(), Row{});
    uint64_t total = 0;
    for (std::size_t r = 0; r < sizes.size(); ++r) {
      rows_[r].off = total;
      rows_[r].cap =
          headroom ? sizes[r] + (sizes[r] >> 1) + 2 : sizes[r];
      total += rows_[r].cap;
    }
    data_.assign(total, 0);
    dead_ = 0;
  }

  std::size_t num_rows() const { return rows_.size(); }
  uint32_t Size(std::size_t row) const { return rows_[row].size; }

  Word Get(std::size_t row, uint32_t i) const {
    return data_[rows_[row].off + i];
  }

  std::span<const Word> RowSpan(std::size_t row) const {
    return {data_.data() + rows_[row].off, rows_[row].size};
  }

  /// Replaces the row's whole content with `words` (the snapshot
  /// publishers' bulk-copy primitive). Relocates to the arena tail if the
  /// row's reserved span is too small; O(|words|) either way.
  void AssignRow(std::size_t row, std::span<const Word> words) {
    Row& r = rows_[row];
    FASTPPR_CHECK(words.size() <= kLoMask);
    if (words.size() > r.cap) {
      const uint32_t new_cap = std::max<uint32_t>(
          static_cast<uint32_t>(words.size()), r.cap == 0 ? 4 : 2 * r.cap);
      dead_ += r.cap;
      r.off = data_.size();
      r.cap = new_cap;
      data_.resize(data_.size() + new_cap);
    }
    r.size = static_cast<uint32_t>(words.size());
    std::copy(words.begin(), words.end(), data_.begin() + r.off);
    MaybeCompact();
  }

  /// Appends and returns the index the word landed at.
  uint32_t PushBack(std::size_t row, Word word) {
    Row& r = rows_[row];
    if (r.size == r.cap) Grow(row);
    const uint32_t at = rows_[row].size++;
    data_[rows_[row].off + at] = word;
    return at;
  }

  /// Shrinks the row to `new_size` (<= current size) in O(1).
  void Truncate(std::size_t row, uint32_t new_size) {
    Row& r = rows_[row];
    FASTPPR_CHECK(new_size <= r.size);
    r.size = new_size;
  }

  /// Replaces element `i` — which must equal `expect` (corruption check,
  /// aborts otherwise) — with the last element and shrinks the row.
  /// Returns the word that now occupies index `i` (identical to the
  /// removed word when `i` was the last index). One row binding: this
  /// sits on the hottest path of the walk stores.
  Word VerifiedSwapRemove(std::size_t row, uint32_t i, Word expect) {
    Row& r = rows_[row];
    FASTPPR_CHECK(i < r.size);
    Word* base = data_.data() + r.off;
    FASTPPR_CHECK(base[i] == expect);
    const Word moved = base[r.size - 1];
    base[i] = moved;
    --r.size;
    return moved;
  }

  /// Overwrites only the low 24 bits of element `i` (one row binding).
  /// Packed-uint64 pools only.
  void SetLo(std::size_t row, uint32_t i, uint32_t lo) {
    Word& w = data_[rows_[row].off + i];
    w = WithLo(w, lo);
  }

  /// Serializes the pool verbatim — arena (including deterministic dead
  /// words), row table, dead counter — so a restored pool is
  /// bit-identical: identical row placement, identical future
  /// relocation/compaction decisions (DESIGN.md §8). `Sink` is
  /// ArenaWriter (templated to keep this header free of store/arena_io
  /// for its NodeId-pool users in graph/).
  template <typename Sink>
  void SaveTo(Sink* w) const {
    w->Vec(data_);
    w->Vec(rows_);
    w->Pod(dead_);
  }

  /// Restores SaveTo state. Returns false (reader failed, caller maps to
  /// Corruption) on truncation or a row table that does not tile into
  /// the arena; never crashes on garbage input.
  template <typename Src>
  bool LoadFrom(Src* r) {
    if (!r->Vec(&data_) || !r->Vec(&rows_) || !r->Pod(&dead_)) return false;
    for (const Row& row : rows_) {
      if (row.size > row.cap || row.off > data_.size() ||
          row.cap > data_.size() - row.off) {
        return r->Fail("slab row outside its arena");
      }
    }
    return true;
  }

  /// Words in the arena that belong to no live row (relocation garbage).
  uint64_t dead_words() const { return dead_; }
  std::size_t arena_words() const { return data_.size(); }

  /// Heap bytes held by the arena and the row table (capacities, not
  /// sizes — what the process actually pays). The row table is the term
  /// the dense frozen-segment addressing of store/segment_snapshot.h
  /// exists to shrink: 16 bytes per row, paid per pooled buffer.
  std::size_t MemoryBytes() const {
    return data_.capacity() * sizeof(Word) +
           rows_.capacity() * sizeof(Row);
  }
  std::size_t row_table_bytes() const {
    return rows_.capacity() * sizeof(Row);
  }

 private:
  struct Row {
    uint64_t off = 0;
    uint32_t size = 0;
    uint32_t cap = 0;
  };
  // Serialized raw (SaveTo/LoadFrom): must stay padding-free.
  static_assert(sizeof(Row) == 16);

  void Grow(std::size_t row) {
    Row& r = rows_[row];
    if (r.off + r.cap == data_.size()) {
      // Tail row: extend the arena in place.
      const uint32_t add = r.cap == 0 ? 4 : r.cap;
      data_.resize(data_.size() + add);
      r.cap += add;
      return;
    }
    // Relocate to the tail with doubled capacity; the old span is dead.
    const uint32_t new_cap = r.cap == 0 ? 4 : 2 * r.cap;
    const uint64_t new_off = data_.size();
    data_.resize(data_.size() + new_cap);
    for (uint32_t i = 0; i < r.size; ++i) {
      data_[new_off + i] = data_[r.off + i];
    }
    dead_ += r.cap;
    r.off = new_off;
    r.cap = new_cap;
    MaybeCompact();
  }

  void MaybeCompact() {
    if (data_.size() < 4096 || dead_ * 2 < data_.size()) return;
    // Squeeze out the relocation garbage between rows. Caps are
    // preserved: trimming them would put every row right back on the
    // relocation treadmill (each row's cap is its high-water mark, so
    // caps — and with them the compacted arena — are bounded).
    uint64_t total = 0;
    for (const Row& r : rows_) total += r.cap;
    std::vector<Word> packed(total, 0);
    uint64_t at = 0;
    for (Row& r : rows_) {
      for (uint32_t i = 0; i < r.size; ++i) {
        packed[at + i] = data_[r.off + i];
      }
      r.off = at;
      at += r.cap;
    }
    data_.swap(packed);
    dead_ = 0;
  }

  std::vector<Word> data_;
  std::vector<Row> rows_;
  uint64_t dead_ = 0;
};

/// The packed-word pool every walk store is built on.
using SlabPool = BasicSlabPool<uint64_t>;

}  // namespace fastppr::slab

#endif  // FASTPPR_STORE_WALK_SLAB_H_
