#include "fastppr/graph/csr_graph.h"

#include "fastppr/util/check.h"

namespace fastppr {

CsrGraph CsrGraph::FromEdges(std::size_t num_nodes,
                             const std::vector<Edge>& edges) {
  CsrGraph g;
  g.num_nodes_ = num_nodes;
  g.out_offsets_.assign(num_nodes + 1, 0);
  g.in_offsets_.assign(num_nodes + 1, 0);
  for (const Edge& e : edges) {
    FASTPPR_CHECK(e.src < num_nodes && e.dst < num_nodes);
    ++g.out_offsets_[e.src + 1];
    ++g.in_offsets_[e.dst + 1];
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.out_targets_.resize(edges.size());
  g.in_sources_.resize(edges.size());
  std::vector<uint64_t> out_fill(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
  std::vector<uint64_t> in_fill(g.in_offsets_.begin(),
                                g.in_offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.out_targets_[out_fill[e.src]++] = e.dst;
    g.in_sources_[in_fill[e.dst]++] = e.src;
  }
  return g;
}

CsrGraph CsrGraph::FromDiGraph(const DiGraph& g) {
  return FromEdges(g.num_nodes(), g.Edges());
}

}  // namespace fastppr
