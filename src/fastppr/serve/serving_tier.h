#ifndef FASTPPR_SERVE_SERVING_TIER_H_
#define FASTPPR_SERVE_SERVING_TIER_H_

// Overload-safe serving tier over a QueryService (DESIGN.md §10).
//
// The query service's reads are lock-free against ingestion (PR 4) but
// arrivals used to be closed-loop: offered load past saturation grew
// caller queues without bound and destroyed every percentile. This tier
// makes the service degrade gracefully instead of collapsing:
//
//  * Admission control — one bounded AdmissionQueue per query class
//    (TopK / Score / PersonalizedTopK). Enqueue past capacity sheds
//    immediately with ResourceExhausted + a retry-after hint; queued
//    requests that age past the controlled-delay horizon are shed at
//    dequeue; under pressure admitted dequeues go LIFO so the served
//    requests are fresh and the admitted p99 stays flat.
//  * Deadlines — every Request carries a serve::Deadline. An expired
//    request is answered DeadlineExceeded without touching the engine;
//    a deadline expiring mid-walk cancels the walk cooperatively
//    (WalkerOptions::deadline, polled in the accumulation loops).
//  * Degradation ladder — keyed on queue depth and deadline slack:
//    full walk budget → reduced walk budget (length / divisor) →
//    stale-epoch cheap-TopK fallback served from the seqlock count
//    snapshots. Every degraded answer is labelled in the Response
//    (degrade + snapshot epochs vs fresh_epoch), so correctness stays
//    auditable: a degraded answer is never silently passed off as full
//    fidelity.
//
//  * Batching — within one personalized class slice a worker coalesces
//    the requests it dequeues into a batch (serve/batcher.h) executed
//    through QueryService::PersonalizedTopKInto: one frozen-view pin
//    and one reusable dense walker scratch for the whole batch, with
//    per-request deadlines/RNG seeds preserved so every answer is
//    bit-identical to its unbatched execution.
//  * Result cache — an epoch-keyed sharded LRU (serve/result_cache.h)
//    consulted before admission: a hit bypasses the queue entirely and
//    is labelled (`Response::cache_hit` + the entry's audited epochs).
//    Entries are keyed by frozen epoch, so publish rotation invalidates
//    by construction.
//
// Terminal-outcome contract: every Submit() resolves its on_done
// exactly once with one of {admitted (possibly degraded or from
// cache), shed, deadline-expired, unavailable} — no silent hangs, even
// when a shard stalls (the stalled worker wedges ONE request; the
// queue bounds and the controlled-delay shed keep resolving the rest)
// or the tier shuts down mid-backlog (Close + drain answers
// Unavailable).

#include <array>
#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "fastppr/engine/query_service.h"
#include "fastppr/serve/admission_queue.h"
#include "fastppr/serve/batcher.h"
#include "fastppr/serve/deadline.h"
#include "fastppr/serve/result_cache.h"
#include "fastppr/util/check.h"
#include "fastppr/util/status.h"

namespace fastppr::serve {

enum class QueryClass : std::size_t {
  kTopK = 0,
  kScore = 1,
  kPersonalized = 2,
};
inline constexpr std::size_t kNumQueryClasses = 3;

/// How far down the degradation ladder an answer was served.
enum class DegradeLevel : std::size_t {
  kFull = 0,         ///< full walk budget / exact snapshot read
  kReducedWalk = 1,  ///< personalized walk at a fraction of the budget
  kStaleFallback = 2,///< cheap global-TopK answer from the (possibly
                     ///  stale-epoch) count snapshots, no walk at all
};

inline const char* DegradeLevelName(DegradeLevel d) {
  switch (d) {
    case DegradeLevel::kFull: return "full";
    case DegradeLevel::kReducedWalk: return "reduced_walk";
    case DegradeLevel::kStaleFallback: return "stale_fallback";
  }
  return "unknown";
}

/// The tier's answer. Exactly one Response per Submit, always.
struct Response {
  Status status;                       ///< OK, ResourceExhausted (shed),
                                       ///  DeadlineExceeded, Unavailable
  DegradeLevel degrade = DegradeLevel::kFull;
  bool degraded() const { return degrade != DegradeLevel::kFull; }

  /// Shed only: wait at least this long before retrying (the
  /// admission queue's backlog-drain estimate; serve/retry.h treats it
  /// as a floor under the jittered backoff).
  uint64_t retry_after_ns = 0;

  /// Which snapshot epochs the answer was computed from, and where the
  /// service's published epoch stood at execution time — the staleness
  /// of a degraded answer is auditable, never hidden.
  SnapshotInfo snapshot;
  uint64_t fresh_epoch = 0;

  /// Served from the epoch-keyed result cache: the queue was bypassed
  /// (queue_ns == service_ns == 0) and `snapshot` carries the audited
  /// epochs of the frozen view the cached walk was computed against —
  /// a hit is labelled, never passed off as a freshly executed walk.
  bool cache_hit = false;

  uint64_t queue_ns = 0;    ///< measured sojourn (admitted AND
                            ///  dequeue-side sheds — a CoDel shed
                            ///  reports the delay that doomed it)
  uint64_t service_ns = 0;  ///< execution time (0 when shed/expired)

  // Per-class payloads (only the requested class's field is filled).
  std::vector<ScoredNode> ranked;  ///< kPersonalized (walk or fallback)
  std::vector<NodeId> topk;        ///< kTopK
  double score = 0.0;              ///< kScore
};

struct Request {
  QueryClass cls = QueryClass::kScore;
  NodeId node = 0;            ///< seed (personalized / score)
  std::size_t k = 10;         ///< result count (topk / personalized)
  uint64_t walk_length = 0;   ///< full walk budget (personalized)
  bool exclude_friends = true;
  uint64_t rng_seed = 0;
  Deadline deadline = Deadline::Infinite();
  /// Open-loop accounting: the scheduled arrival instant (ns on the
  /// tier's clock). 0 = stamped at Submit. Latency owed to dispatcher
  /// lag is charged to the request, never silently dropped — the
  /// coordinated-omission-free measurement the bench relies on.
  uint64_t arrival_ns = 0;
  /// Invoked exactly once, from a worker thread (or from Submit for an
  /// immediate shed). Must be set.
  std::function<void(const Response&)> on_done;
};

struct ServingTierOptions {
  std::size_t num_workers = 2;
  /// Per-class admission queues (same defaults unless overridden).
  AdmissionQueueOptions queue;
  /// Per-class capacity overrides, indexed by QueryClass (0 = use
  /// `queue.capacity`). Batched personalized serving typically wants a
  /// deeper walk queue than the cheap snapshot classes; the degradation
  /// ladder reads each request's OWN class capacity, so the fractions
  /// stay meaningful under asymmetric configs.
  std::array<std::size_t, kNumQueryClasses> queue_capacity = {0, 0, 0};
  /// Upper bound on requests coalesced into one personalized batch
  /// (one frozen-view pin + one walker scratch per batch). 1 disables
  /// batching: every request executes on the unbatched path.
  std::size_t max_batch = 8;
  /// Epoch-keyed PersonalizedTopK result cache, consulted before
  /// admission. Invalidation is by construction (entries keyed by
  /// frozen epoch); disable for traffic with no seed repetition.
  bool enable_result_cache = true;
  ResultCacheOptions cache;
  /// Ladder rung 1: queue depth (fraction of capacity) or deadline
  /// slack below which a personalized walk runs at reduced budget.
  double reduce_depth_frac = 0.50;
  uint64_t reduce_slack_ns = 2'000'000;    // < 2 ms slack: don't go full
  uint64_t reduced_walk_divisor = 4;
  /// Ladder rung 2: depth/slack past which the walk is skipped entirely
  /// for the cheap stale-fallback answer.
  double fallback_depth_frac = 0.85;
  uint64_t fallback_slack_ns = 300'000;    // < 300 µs slack: no walk
  /// Time quantum of one class's turn in the worker rotation. Serving
  /// one entry per class per turn would ration by COUNT — the class
  /// with the highest arrival rate overflows first even when its
  /// queries are 100x cheaper than everyone else's. A time slice is
  /// cost-aware for free: a turn drains hundreds of cheap queries or a
  /// couple of expensive walks, and no class can hold a worker longer
  /// than slice + one query.
  uint64_t class_slice_ns = 500'000;       // 500 µs per class turn
  ClockFn clock = &obs::NowNanos;
};

/// Outcome tallies, readable at any time (relaxed atomics). The
/// fault-injection tests assert resolved() == submitted().
struct OutcomeCounts {
  uint64_t admitted_full = 0;
  uint64_t admitted_degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline_expired = 0;
  uint64_t unavailable = 0;
  uint64_t failed = 0;  ///< any other non-OK execution status
  uint64_t resolved() const {
    return admitted_full + admitted_degraded + shed + deadline_expired +
           unavailable + failed;
  }
};

template <typename Engine>
class ServingTier {
  // The class-striped counters in obs/engine_metrics.h are registered
  // with a literal stripe count; pin it to the enum here.
  static_assert(kNumQueryClasses == 3,
                "obs/engine_metrics.h stripes serve_* counters by 3 "
                "query classes");
  // Same deal for the cache-shard-striped serve_cache_* counters.
  static_assert(kResultCacheShards == 8,
                "obs/engine_metrics.h stripes serve_cache_* counters by "
                "8 cache shards");

 public:
  using Service = QueryService<Engine>;

  ServingTier(Service* service, const ServingTierOptions& options)
      : service_(service),
        options_(options),
        queues_{ClassQueueOptions(options, 0), ClassQueueOptions(options, 1),
                ClassQueueOptions(options, 2)},
        cache_(options.cache) {
    FASTPPR_CHECK(service_ != nullptr);
    FASTPPR_CHECK(options_.num_workers >= 1);
    FASTPPR_CHECK(options_.reduced_walk_divisor >= 1);
    FASTPPR_CHECK(options_.max_batch >= 1);
    om_ = service_->engine()->metric_handles();
    workers_.reserve(options_.num_workers);
    for (std::size_t w = 0; w < options_.num_workers; ++w) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ServingTier() { Shutdown(); }

  ServingTier(const ServingTier&) = delete;
  ServingTier& operator=(const ServingTier&) = delete;

  /// Submits one request. Never blocks on the engine: the request is
  /// either answered from the result cache, queued (a worker resolves
  /// it), or resolved right here (shed on a full queue, unavailable
  /// after shutdown). on_done fires exactly once either way.
  void Submit(Request req) {
    FASTPPR_CHECK(req.on_done != nullptr);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (req.arrival_ns == 0) req.arrival_ns = options_.clock();
    const std::size_t cls = static_cast<std::size_t>(req.cls);
    FASTPPR_CHECK(cls < kNumQueryClasses);
    if (stopping_.load(std::memory_order_acquire)) {
      RespondUnavailable(req);
      return;
    }
    if (req.cls == QueryClass::kPersonalized &&
        options_.enable_result_cache && TryServeFromCache(req)) {
      return;
    }
    // Test-only: exercises the Submit/Close race deterministically (the
    // shutdown-mislabel regression test arms it to land Close() between
    // the stopping_ check above and TryEnqueue below).
    if (submit_race_armed_.load(std::memory_order_acquire)) {
      std::function<void(QueryClass)> hook;
      {
        std::lock_guard<std::mutex> lock(fault_mu_);
        hook = submit_race_hook_;
      }
      if (hook) hook(req.cls);
    }
    uint64_t retry_after = 0;
    // TryEnqueue moves from `req` only on kQueued; on the rejection
    // paths the request is still intact here. Closed and full are
    // distinct outcomes: a Submit racing Close() must be answered
    // Unavailable (shutdown), not ResourceExhausted + retry hint
    // (overload) — clients must not back off and retry a dying server.
    switch (queues_[cls].TryEnqueue(&req, &retry_after)) {
      case EnqueueOutcome::kClosed:
        RespondUnavailable(req);
        return;
      case EnqueueOutcome::kFull:
        RespondShed(req, retry_after);
        return;
      case EnqueueOutcome::kQueued:
        break;
    }
    queued_.fetch_add(1, std::memory_order_relaxed);
    // Skip the lock+notify when every worker is already busy draining —
    // at overload rates Submit runs hot and the condvar handshake is
    // pure contention. A worker that races into its wait re-checks
    // queued_ under the lock, and the wait is timed (1 ms) anyway, so a
    // missed wakeup costs bounded latency, never liveness.
    if (idle_workers_.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(wake_mu_);
      wake_.notify_one();
    }
  }

  /// Stops the workers and resolves every still-queued request with
  /// Unavailable. Idempotent; also run by the destructor.
  void Shutdown() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      for (std::thread& t : workers_) {
        if (t.joinable()) t.join();
      }
      return;
    }
    for (auto& q : queues_) q.Close();
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      wake_.notify_all();
    }
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    // Drain after join: single-threaded, every leftover resolves.
    for (auto& q : queues_) {
      Request req;
      while (q.DrainClosed(&req)) RespondUnavailable(req);
    }
  }

  OutcomeCounts outcomes() const {
    OutcomeCounts c;
    c.admitted_full = tally_[0].load(std::memory_order_relaxed);
    c.admitted_degraded = tally_[1].load(std::memory_order_relaxed);
    c.shed = tally_[2].load(std::memory_order_relaxed);
    c.deadline_expired = tally_[3].load(std::memory_order_relaxed);
    c.unavailable = tally_[4].load(std::memory_order_relaxed);
    c.failed = tally_[5].load(std::memory_order_relaxed);
    return c;
  }
  uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }

  std::size_t queue_depth(QueryClass cls) const {
    return queues_[static_cast<std::size_t>(cls)].size();
  }
  std::size_t queue_high_water(QueryClass cls) const {
    return queues_[static_cast<std::size_t>(cls)].high_water();
  }
  std::size_t queue_capacity(QueryClass cls) const {
    return queues_[static_cast<std::size_t>(cls)].capacity();
  }

  /// Result-cache lifetime totals (hits/misses/insertions/evictions).
  ResultCache::Stats cache_stats() const { return cache_.stats(); }

  /// Personalized batch executions (each = one frozen-view pin) and the
  /// requests served inside them. A batch of one still counts.
  uint64_t batches_executed() const {
    return batches_executed_.load(std::memory_order_relaxed);
  }
  uint64_t batched_requests() const {
    return batched_requests_.load(std::memory_order_relaxed);
  }

  /// Test-only fault injection (slow shard, stalled dependency): when
  /// armed, runs at the start of every executed request — a hook that
  /// sleeps models a stalled shard under the walker. Not for
  /// production paths; guarded by one relaxed atomic load when unset.
  void SetFaultHook(std::function<void(QueryClass)> hook) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    fault_hook_ = std::move(hook);
    fault_armed_.store(fault_hook_ != nullptr, std::memory_order_release);
  }

  /// Test-only: runs inside Submit between the stopping_ check and
  /// TryEnqueue — the window of the shutdown-mislabel race.
  void SetSubmitRaceHook(std::function<void(QueryClass)> hook) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    submit_race_hook_ = std::move(hook);
    submit_race_armed_.store(submit_race_hook_ != nullptr,
                             std::memory_order_release);
  }

 private:
  static constexpr std::size_t kTallyAdmittedFull = 0;
  static constexpr std::size_t kTallyAdmittedDegraded = 1;
  static constexpr std::size_t kTallyShed = 2;
  static constexpr std::size_t kTallyDeadline = 3;
  static constexpr std::size_t kTallyUnavailable = 4;
  static constexpr std::size_t kTallyFailed = 5;

  void Tally(std::size_t slot) {
    tally_[slot].fetch_add(1, std::memory_order_relaxed);
  }

  /// Builds one class's queue options: shared knobs + the per-class
  /// capacity override.
  static AdmissionQueueOptions ClassQueueOptions(
      const ServingTierOptions& options, std::size_t cls) {
    AdmissionQueueOptions q = options.queue;
    if (options.queue_capacity[cls] != 0) {
      q.capacity = options.queue_capacity[cls];
    }
    return q;
  }

  // Status messages on the overload paths stay within the small-string
  // buffer: at 2x saturation the shed path runs at the offered rate,
  // and a heap allocation per rejection is exactly the kind of work an
  // overloaded tier must not do.
  //
  // `queue_ns` is the measured sojourn for dequeue-side (CoDel) sheds —
  // threaded into the Response and the serve_queue_wait histogram so
  // the delay that doomed a request is observable, not discarded.
  // Enqueue-side sheds never queued and pass 0.
  void RespondShed(const Request& req, uint64_t retry_after_ns,
                   uint64_t queue_ns = 0) {
    Response resp;
    resp.status = Status::ResourceExhausted("overloaded");
    resp.queue_ns = queue_ns;
    resp.retry_after_ns =
        retry_after_ns != 0
            ? retry_after_ns
            : queues_[static_cast<std::size_t>(req.cls)].RetryAfterHint();
    Tally(kTallyShed);
    if (service_->engine()->metrics_enabled()) {
      om_.serve_shed->Add(1, static_cast<std::size_t>(req.cls));
      if (queue_ns != 0) om_.serve_queue_wait->Record(queue_ns);
    }
    req.on_done(resp);
  }

  /// The admission-bypass probe: answers `req` from the cache and
  /// returns true on a hit. The key's epoch is the CURRENT frozen
  /// epoch, so entries computed against retired views are unreachable
  /// by construction — a concurrent rotation can only turn a would-be
  /// hit into a miss, never serve a stale entry as fresh.
  bool TryServeFromCache(const Request& req) {
    ResultCacheKey key;
    key.frozen_epoch = service_->frozen_epoch();
    key.seed = req.node;
    key.k = req.k;
    key.walk_length = req.walk_length;
    key.exclude_friends = req.exclude_friends;
    const std::size_t stripe = ResultCache::ShardOf(key);
    const bool hot = service_->engine()->metrics_enabled();
    ResultCacheEntry entry;
    if (!cache_.Lookup(key, &entry)) {
      if (hot) om_.serve_cache_miss->Add(1, stripe);
      return false;
    }
    Response resp;
    resp.status = Status::OK();
    resp.cache_hit = true;
    resp.snapshot.min_epoch = entry.min_epoch;
    resp.snapshot.max_epoch = entry.max_epoch;
    resp.fresh_epoch = service_->published_epoch();
    resp.ranked = std::move(entry.ranked);
    Tally(kTallyAdmittedFull);
    if (hot) {
      om_.serve_cache_hit->Add(1, stripe);
      om_.serve_admitted->Add(1, static_cast<std::size_t>(req.cls));
    }
    req.on_done(resp);
    return true;
  }

  /// Inserts a freshly executed answer. Only full-fidelity, single-
  /// epoch, non-cached personalized answers are cacheable: a degraded
  /// answer must never be replayed as full fidelity, and a mixed-epoch
  /// snapshot has no single frozen epoch to key by.
  void MaybeCacheInsert(const Request& req, const Response& resp) {
    if (!options_.enable_result_cache ||
        req.cls != QueryClass::kPersonalized) {
      return;
    }
    if (resp.cache_hit || resp.degrade != DegradeLevel::kFull ||
        resp.snapshot.min_epoch != resp.snapshot.max_epoch) {
      return;
    }
    ResultCacheKey key;
    key.frozen_epoch = resp.snapshot.min_epoch;
    key.seed = req.node;
    key.k = req.k;
    key.walk_length = req.walk_length;
    key.exclude_friends = req.exclude_friends;
    ResultCacheEntry entry;
    entry.ranked = resp.ranked;
    entry.min_epoch = resp.snapshot.min_epoch;
    entry.max_epoch = resp.snapshot.max_epoch;
    const std::size_t evicted = cache_.Insert(key, std::move(entry));
    if (evicted != 0 && service_->engine()->metrics_enabled()) {
      om_.serve_cache_evict->Add(evicted, ResultCache::ShardOf(key));
    }
  }

  void RespondUnavailable(const Request& req) {
    Response resp;
    resp.status = Status::Unavailable("shutting down");
    resp.retry_after_ns = options_.queue.target_delay_ns;
    Tally(kTallyUnavailable);
    req.on_done(resp);
  }

  /// Per-item context the batcher carries alongside each staged query.
  struct BatchAux {
    Request req;
    uint64_t queue_ns = 0;
    DegradeLevel degrade = DegradeLevel::kFull;
    uint64_t fresh_epoch = 0;
  };
  using Batcher = PersonalizedBatcher<Service, BatchAux>;

  void WorkerLoop() {
    ReadScratch scratch;
    Batcher batcher(options_.max_batch);
    std::size_t rotate = 0;
    for (;;) {
      bool did_work = false;
      // Time-sliced rotating scan: each non-empty class gets one timed
      // turn, so a flooded class cannot starve the rest and a cheap
      // flooded class is drained at its own (fast) rate instead of
      // being rationed to one query per rotation.
      for (std::size_t i = 0; i < kNumQueryClasses; ++i) {
        const std::size_t cls = (rotate + i) % kNumQueryClasses;
        const uint64_t slice_end =
            options_.clock() + options_.class_slice_ns;
        const bool batch_this_class =
            cls == static_cast<std::size_t>(QueryClass::kPersonalized) &&
            options_.max_batch > 1;
        for (;;) {
          Request req;
          uint64_t queue_ns = 0;
          const DequeueOutcome out = queues_[cls].TryDequeue(&req, &queue_ns);
          if (out == DequeueOutcome::kEmpty) break;
          did_work = true;
          queued_.fetch_sub(1, std::memory_order_relaxed);
          if (out == DequeueOutcome::kShed) {
            RespondShed(req, 0, queue_ns);
          } else if (batch_this_class) {
            CollectPersonalized(std::move(req), queue_ns, &scratch,
                                &batcher);
            if (batcher.full()) FlushBatch(&batcher);
          } else {
            Execute(req, queue_ns, &scratch);
          }
          if (options_.clock() >= slice_end) break;
        }
        // Nothing staged outlives the class turn: whatever the slice
        // collected executes now, against one pinned view.
        if (batch_this_class) FlushBatch(&batcher);
        if (did_work) break;  // re-scan from the next class
      }
      ++rotate;
      if (did_work) continue;
      if (stopping_.load(std::memory_order_acquire)) return;
      std::unique_lock<std::mutex> lock(wake_mu_);
      idle_workers_.fetch_add(1, std::memory_order_acq_rel);
      // Timed wait: queued entries age toward the controlled-delay
      // horizon even when no new submission fires the condvar.
      wake_.wait_for(lock, std::chrono::milliseconds(1), [this] {
        return queued_.load(std::memory_order_relaxed) > 0 ||
               stopping_.load(std::memory_order_acquire);
      });
      idle_workers_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  /// Batched-path admission of one dequeued personalized request. The
  /// per-request decisions run at collect time, exactly as the
  /// unbatched path runs them at execute time: deadline fail-fast, the
  /// fault hook, and the degradation ladder (evaluated against the live
  /// queue depth). Fallback-rung requests execute immediately — they
  /// don't walk, so there is nothing to batch; the rest stage their
  /// ladder-chosen budget for the next flush.
  void CollectPersonalized(Request req, uint64_t queue_ns,
                           ReadScratch* scratch, Batcher* batcher) {
    Response resp;
    resp.queue_ns = queue_ns;
    if (req.deadline.expired()) {
      RespondDeadline(req, &resp);
      return;
    }
    if (fault_armed_.load(std::memory_order_acquire)) {
      std::function<void(QueryClass)> hook;
      {
        std::lock_guard<std::mutex> lock(fault_mu_);
        hook = fault_hook_;
      }
      if (hook) hook(req.cls);
    }
    resp.fresh_epoch = service_->published_epoch();
    const std::size_t cls = static_cast<std::size_t>(req.cls);
    resp.degrade = Ladder(req, queues_[cls].size());
    if (resp.degrade == DegradeLevel::kStaleFallback) {
      const uint64_t t0 = options_.clock();
      const Status status = ExecutePersonalized(req, scratch, &resp);
      resp.service_ns = options_.clock() - t0;
      FinishExecuted(req, status, &resp);
      return;
    }
    typename Batcher::Item item;
    item.seed = req.node;
    item.k = req.k;
    item.walk_length =
        resp.degrade == DegradeLevel::kReducedWalk
            ? std::max<uint64_t>(
                  1, req.walk_length / options_.reduced_walk_divisor)
            : req.walk_length;
    item.exclude_friends = req.exclude_friends;
    item.rng_seed = req.rng_seed;
    item.options.deadline = req.deadline;
    BatchAux aux;
    aux.queue_ns = queue_ns;
    aux.degrade = resp.degrade;
    aux.fresh_epoch = resp.fresh_epoch;
    aux.req = std::move(req);
    batcher->Add(std::move(item), std::move(aux));
  }

  /// Executes the staged batch through one pinned frozen view and turns
  /// each item back into a Response on the shared finish path — the
  /// same tallies, metrics and cache insert the unbatched path takes.
  void FlushBatch(Batcher* batcher) {
    if (batcher->empty()) return;
    const std::size_t cls =
        static_cast<std::size_t>(QueryClass::kPersonalized);
    batches_executed_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(batcher->size(), std::memory_order_relaxed);
    if (service_->engine()->metrics_enabled()) {
      om_.serve_batches->Add(1, cls);
      om_.serve_batched_requests->Add(batcher->size(), cls);
    }
    batcher->Flush(service_, options_.clock,
                   [this](BatchAux& aux, typename Batcher::Item& item) {
                     Response resp;
                     resp.queue_ns = aux.queue_ns;
                     resp.degrade = aux.degrade;
                     resp.fresh_epoch = aux.fresh_epoch;
                     resp.snapshot = item.snapshot;
                     resp.service_ns = item.service_ns;
                     resp.ranked = std::move(item.ranked);
                     FinishExecuted(aux.req, item.status, &resp);
                   });
  }

  /// The degradation ladder: queue depth (how far behind the tier is)
  /// and deadline slack (how much time this request has left) each
  /// push the answer down a rung; the worse of the two wins. The depth
  /// fractions are of the REQUEST'S OWN class queue capacity — reading
  /// queues_[0] here silently skewed every rung once per-class
  /// capacities diverged.
  DegradeLevel Ladder(const Request& req, std::size_t depth) const {
    const double cap = static_cast<double>(
        queues_[static_cast<std::size_t>(req.cls)].capacity());
    const uint64_t slack = req.deadline.remaining_nanos();
    if (static_cast<double>(depth) >= options_.fallback_depth_frac * cap ||
        slack < options_.fallback_slack_ns) {
      return DegradeLevel::kStaleFallback;
    }
    if (static_cast<double>(depth) >= options_.reduce_depth_frac * cap ||
        slack < options_.reduce_slack_ns) {
      return DegradeLevel::kReducedWalk;
    }
    return DegradeLevel::kFull;
  }

  void Execute(const Request& req, uint64_t queue_ns, ReadScratch* scratch) {
    const std::size_t cls = static_cast<std::size_t>(req.cls);
    Response resp;
    resp.queue_ns = queue_ns;
    // Expired while queued (or before): answer without touching the
    // engine. The walkers re-check cooperatively mid-walk, so a
    // deadline expiring during execution lands here too, via status.
    if (req.deadline.expired()) {
      RespondDeadline(req, &resp);
      return;
    }
    if (fault_armed_.load(std::memory_order_acquire)) {
      std::function<void(QueryClass)> hook;
      {
        std::lock_guard<std::mutex> lock(fault_mu_);
        hook = fault_hook_;
      }
      if (hook) hook(req.cls);
    }
    const uint64_t t0 = options_.clock();
    resp.fresh_epoch = service_->published_epoch();
    resp.degrade = req.cls == QueryClass::kPersonalized
                       ? Ladder(req, queues_[cls].size())
                       : DegradeLevel::kFull;
    Status status;
    switch (req.cls) {
      case QueryClass::kTopK: {
        resp.topk = service_->TopKInto(req.k, scratch, &resp.snapshot);
        status = Status::OK();
        break;
      }
      case QueryClass::kScore: {
        resp.score = service_->Score(req.node, &resp.snapshot);
        status = Status::OK();
        break;
      }
      case QueryClass::kPersonalized: {
        status = ExecutePersonalized(req, scratch, &resp);
        break;
      }
    }
    resp.service_ns = options_.clock() - t0;
    FinishExecuted(req, status, &resp);
  }

  /// The shared post-execution path (unbatched Execute AND the batch
  /// flush sink): status routing, tallies, metrics, the cache insert,
  /// and the single on_done.
  void FinishExecuted(const Request& req, const Status& status,
                      Response* resp) {
    const std::size_t cls = static_cast<std::size_t>(req.cls);
    if (status.IsDeadlineExceeded()) {
      RespondDeadline(req, resp);
      return;
    }
    resp->status = status;
    const bool hot = service_->engine()->metrics_enabled();
    if (status.ok()) {
      Tally(resp->degraded() ? kTallyAdmittedDegraded : kTallyAdmittedFull);
      if (hot) {
        (resp->degraded() ? om_.serve_degraded : om_.serve_admitted)
            ->Add(1, cls);
        om_.serve_queue_wait->Record(resp->queue_ns);
        om_.serve_admitted_latency->Record(resp->queue_ns +
                                           resp->service_ns);
        om_.serve_queue_depth_hw->Set(queues_[cls].high_water(), cls);
      }
      MaybeCacheInsert(req, *resp);
    } else {
      Tally(kTallyFailed);
    }
    req.on_done(*resp);
  }

  /// Personalized walk at the ladder-chosen budget. The stale fallback
  /// serves a global TopK from the seqlock count snapshots: no walk, no
  /// frozen-view pin — the answer an overloaded recommender can still
  /// afford, labelled (degrade + epochs) so it is never mistaken for a
  /// personalized result.
  Status ExecutePersonalized(const Request& req, ReadScratch* scratch,
                             Response* resp) {
    if (resp->degrade == DegradeLevel::kStaleFallback) {
      int64_t total = 0;
      service_->SnapshotCountsInto(scratch, &total, &resp->snapshot);
      TopKByCountInto(scratch->counts, req.k, &scratch->ranked);
      resp->ranked.clear();
      resp->ranked.reserve(scratch->ranked.size());
      for (NodeId v : scratch->ranked) {
        const int64_t visits = scratch->counts[v];
        resp->ranked.push_back(ScoredNode{
            v, visits,
            total == 0 ? 0.0
                       : static_cast<double>(visits) /
                             static_cast<double>(total)});
      }
      return Status::OK();
    }
    uint64_t length = req.walk_length;
    if (resp->degrade == DegradeLevel::kReducedWalk) {
      length = std::max<uint64_t>(1, length / options_.reduced_walk_divisor);
    }
    WalkerOptions wopts;
    wopts.deadline = req.deadline;
    return service_->PersonalizedTopK(req.node, req.k, length,
                                      req.exclude_friends, req.rng_seed,
                                      wopts, &resp->ranked,
                                      /*walk_stats=*/nullptr,
                                      &resp->snapshot);
  }

  void RespondDeadline(const Request& req, Response* resp) {
    resp->status = Status::DeadlineExceeded("past deadline");
    Tally(kTallyDeadline);
    if (service_->engine()->metrics_enabled()) {
      om_.serve_deadline_expired->Add(1, static_cast<std::size_t>(req.cls));
    }
    req.on_done(*resp);
  }

  Service* service_;
  const ServingTierOptions options_;
  obs::EngineMetrics om_;
  AdmissionQueue<Request> queues_[kNumQueryClasses];
  ResultCache cache_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> queued_{0};
  std::atomic<int> idle_workers_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> tally_[6] = {};
  std::atomic<uint64_t> batches_executed_{0};
  std::atomic<uint64_t> batched_requests_{0};
  std::mutex wake_mu_;
  std::condition_variable wake_;
  std::mutex fault_mu_;
  std::function<void(QueryClass)> fault_hook_;
  std::atomic<bool> fault_armed_{false};
  std::function<void(QueryClass)> submit_race_hook_;
  std::atomic<bool> submit_race_armed_{false};
};

}  // namespace fastppr::serve

#endif  // FASTPPR_SERVE_SERVING_TIER_H_
