#include "fastppr/core/ppr_walker.h"

#include <cmath>

#include <gtest/gtest.h>

#include "fastppr/baseline/power_iteration.h"
#include "fastppr/core/theory.h"
#include "fastppr/graph/csr_graph.h"
#include "fastppr/graph/generators.h"

namespace fastppr {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n, std::size_t m, std::size_t R, double eps,
                   uint64_t seed)
      : social(n) {
    Rng rng(seed);
    auto edges = ErdosRenyi(n, m, &rng);
    for (const Edge& e : edges) {
      EXPECT_TRUE(social.AddEdge(e.src, e.dst).ok());
    }
    store.Init(social.graph(), R, eps, seed + 1);
  }
  SocialStore social;
  WalkStore store;
};

TEST(PprWalkerTest, WalkReachesRequestedLength) {
  Fixture f(50, 400, 5, 0.2, 1);
  PersonalizedPageRankWalker walker(&f.store, &f.social);
  PersonalizedWalkResult result;
  ASSERT_TRUE(walker.Walk(3, 5000, 2, &result).ok());
  EXPECT_GE(result.length, 5000u);
  // Total visits recorded equals the length.
  int64_t total = 0;
  for (const auto& [node, cnt] : result.visit_counts) total += cnt;
  EXPECT_EQ(static_cast<uint64_t>(total), result.length);
  EXPECT_GE(result.fetches, 1u);
  EXPECT_GT(result.resets, 0u);
}

TEST(PprWalkerTest, InvalidSeedRejected) {
  Fixture f(10, 50, 3, 0.2, 3);
  PersonalizedPageRankWalker walker(&f.store, &f.social);
  PersonalizedWalkResult result;
  EXPECT_TRUE(walker.Walk(99, 100, 4, &result).IsInvalidArgument());
}

TEST(PprWalkerTest, VisitDistributionMatchesExactPersonalizedPageRank) {
  Fixture f(40, 300, 10, 0.2, 5);
  PersonalizedPageRankWalker walker(&f.store, &f.social);
  PersonalizedWalkResult result;
  const NodeId seed = 7;
  ASSERT_TRUE(walker.Walk(seed, 400000, 6, &result).ok());

  PowerIterationOptions opts;
  opts.epsilon = 0.2;
  auto exact =
      PersonalizedPageRank(CsrGraph::FromDiGraph(f.social.graph()), seed,
                           opts);
  double l1 = 0.0;
  for (NodeId v = 0; v < 40; ++v) {
    auto it = result.visit_counts.find(v);
    const double freq =
        it == result.visit_counts.end()
            ? 0.0
            : static_cast<double>(it->second) /
                  static_cast<double>(result.length);
    l1 += std::abs(freq - exact.scores[v]);
  }
  EXPECT_LT(l1, 0.05);
}

TEST(PprWalkerTest, FetchBudgetExhaustionReported) {
  Fixture f(60, 500, 2, 0.2, 7);
  WalkerOptions opts;
  opts.max_fetches = 3;
  PersonalizedPageRankWalker walker(&f.store, &f.social, opts);
  PersonalizedWalkResult result;
  Status s = walker.Walk(0, 100000, 8, &result);
  EXPECT_TRUE(s.IsResourceExhausted());
}

TEST(PprWalkerTest, OneEdgeFetchModeCostsMoreFetches) {
  Fixture f(50, 400, 3, 0.2, 9);
  PersonalizedPageRankWalker all_mode(&f.store, &f.social);
  WalkerOptions one_opts;
  one_opts.fetch_mode = FetchMode::kSegmentsAndOneEdge;
  PersonalizedPageRankWalker one_mode(&f.store, &f.social, one_opts);

  PersonalizedWalkResult all_result, one_result;
  ASSERT_TRUE(all_mode.Walk(1, 20000, 10, &all_result).ok());
  ASSERT_TRUE(one_mode.Walk(1, 20000, 10, &one_result).ok());
  EXPECT_GE(one_result.fetches, all_result.fetches);
  // Remark 1: one-edge mode pays one fetch per manual step on top of the
  // per-node fetches.
  EXPECT_EQ(one_result.fetches,
            one_result.manual_steps + all_result.fetches);
}

TEST(PprWalkerTest, TopKExcludesSeedAndFriends) {
  Fixture f(30, 250, 5, 0.2, 11);
  PersonalizedPageRankWalker walker(&f.store, &f.social);
  std::vector<ScoredNode> ranked;
  const NodeId seed = 4;
  ASSERT_TRUE(walker.TopK(seed, 10, 20000, /*exclude_friends=*/true, 12,
                          &ranked)
                  .ok());
  EXPECT_LE(ranked.size(), 10u);
  for (const ScoredNode& s : ranked) {
    EXPECT_NE(s.node, seed);
    for (NodeId friend_node : f.social.graph().OutNeighbors(seed)) {
      EXPECT_NE(s.node, friend_node);
    }
  }
  // Ranked by visits, descending.
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].visits, ranked[i].visits);
  }
}

TEST(PprWalkerTest, TopKIncludesFriendsWhenNotExcluded) {
  // A tight cycle seeded at 0: node 1 (the only out-neighbour) dominates
  // the personalized scores and must appear when friends are allowed.
  SocialStore social(5);
  for (const Edge& e : DirectedCycle(5)) {
    ASSERT_TRUE(social.AddEdge(e.src, e.dst).ok());
  }
  WalkStore store;
  store.Init(social.graph(), 5, 0.2, 13);
  PersonalizedPageRankWalker walker(&store, &social);
  std::vector<ScoredNode> ranked;
  ASSERT_TRUE(
      walker.TopK(0, 2, 20000, /*exclude_friends=*/false, 14, &ranked).ok());
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].node, 1u);
}

TEST(PprWalkerTest, FetchCountGrowsSublinearlyInWalkLength) {
  // Theorem 8: fetches grow like s^{1/alpha} / (nR)^{...}, far below s
  // for short-to-moderate walks; sanity-check the qualitative shape.
  Fixture f(2000, 30000, 10, 0.2, 15);
  PersonalizedPageRankWalker walker(&f.store, &f.social);
  PersonalizedWalkResult short_walk, long_walk;
  ASSERT_TRUE(walker.Walk(0, 1000, 16, &short_walk).ok());
  ASSERT_TRUE(walker.Walk(0, 10000, 16, &long_walk).ok());
  EXPECT_LT(long_walk.fetches, long_walk.length);
  EXPECT_GE(long_walk.fetches, short_walk.fetches);
}

TEST(PprWalkerTest, DanglingSeedStillWalks) {
  // The seed has no out-edges: every session resets immediately and the
  // walk is all seed visits.
  SocialStore social(3);
  ASSERT_TRUE(social.AddEdge(1, 0).ok());
  WalkStore store;
  store.Init(social.graph(), 2, 0.2, 17);
  PersonalizedPageRankWalker walker(&store, &social);
  PersonalizedWalkResult result;
  ASSERT_TRUE(walker.Walk(0, 100, 18, &result).ok());
  EXPECT_GE(result.length, 100u);
  EXPECT_EQ(result.visit_counts.at(0), static_cast<int64_t>(result.length));
}

TEST(RankVisitsTest, StableOrderingAndScores) {
  std::unordered_map<NodeId, int64_t> counts{{1, 5}, {2, 5}, {3, 9}};
  auto ranked = RankVisits(counts, 3, 19, {});
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].node, 3u);
  EXPECT_EQ(ranked[1].node, 1u);  // tie broken by id
  EXPECT_EQ(ranked[2].node, 2u);
  EXPECT_NEAR(ranked[0].score, 9.0 / 19.0, 1e-12);
}

}  // namespace
}  // namespace fastppr
