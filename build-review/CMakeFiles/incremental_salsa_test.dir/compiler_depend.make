# Empty compiler generated dependencies file for incremental_salsa_test.
# This may be replaced when dependencies are built.
